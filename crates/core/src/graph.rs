//! Random bipartite graphs connecting one cascade level to the next.
//!
//! Each graph has `left` message nodes (the packets of level `i`) and `right`
//! check nodes (the packets of level `i+1`).  A check packet's payload is the
//! XOR of its left neighbours (Figure 1 of the paper).  The graph is built
//! by giving every message node a degree drawn from the level's (heavy-tail)
//! degree distribution and connecting it to that many *distinct* check nodes
//! chosen uniformly at random — so check-node degrees follow the binomial /
//! Poisson profile assumed by the original analysis, and no edge is ever
//! duplicated (a duplicated neighbour would cancel itself out of the XOR and
//! silently weaken the constraint).
//!
//! The structure is fully determined by `(left, right, distribution, seed)`,
//! which is how "the source and the clients have agreed to the graph structure
//! in advance" (Section 5.1): the sender communicates only those few scalars
//! and both sides rebuild the same graph.

use crate::degree::{right_regular_degrees, DegreeDistribution};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How check-node degrees are assigned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckSide {
    /// Every message node picks its check neighbours uniformly at random, so
    /// check degrees follow a binomial/Poisson profile — the model used in the
    /// original asymptotic analysis.
    Poisson,
    /// Check degrees are equalised ("right-regular"): edge sockets are spread
    /// as evenly as possible over the check nodes before being matched.  This
    /// concentrates the check degrees and behaves better at the finite block
    /// lengths the paper benchmarks.
    Regular,
}

/// A bipartite graph between `left` message nodes and `right` check nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    left: usize,
    right: usize,
    /// For each check node, the sorted list of left neighbours.
    check_neighbors: Vec<Vec<u32>>,
    /// For each left node, the list of check nodes it participates in.
    left_neighbors: Vec<Vec<u32>>,
    /// Total number of edges after de-duplication.
    edges: usize,
}

impl BipartiteGraph {
    /// Build a random graph with the given left-degree distribution and
    /// check-side mode.
    ///
    /// # Panics
    ///
    /// Panics if `left == 0` or `right == 0`; cascade construction never
    /// creates empty levels.
    pub fn random<R: Rng + ?Sized>(
        left: usize,
        right: usize,
        distribution: &DegreeDistribution,
        check_side: CheckSide,
        rng: &mut R,
    ) -> Self {
        assert!(left > 0 && right > 0, "graph levels must be non-empty");
        // Degrees from the distribution, capped at the number of check nodes
        // (a node cannot have more distinct neighbours than there are check
        // nodes).
        let mut left_degrees: Vec<usize> = distribution
            .degree_sequence(left, rng)
            .into_iter()
            .map(|d| d.min(right))
            .collect();

        // --- Stopping-set conditioning -------------------------------------
        //
        // Message nodes of degree ≤ 2 are the dominant source of small
        // stopping sets in a purely random graph: two degree-2 nodes that
        // share both their check nodes can never be peeled if both are lost,
        // and a constant number of such pairs appears at every block length,
        // which is what produces the long overhead tails the paper's Figure 2
        // does not have.  We therefore (a) cap the number of degree-≤2 nodes
        // at 90 % of the number of check nodes (promoting the excess to
        // degree 3) and (b) place them on *consecutive* check pairs around a
        // ring, so the subgraph they induce is a single long path instead of
        // many short random cycles — the same accumulator-style conditioning
        // used by irregular-repeat-accumulate LDPC designs.
        let mut low: Vec<usize> = (0..left).filter(|&l| left_degrees[l] <= 2).collect();
        let low_cap = (right * 9) / 10;
        if low.len() > low_cap && right >= 3 {
            low.shuffle(rng);
            for &l in &low[low_cap..] {
                left_degrees[l] = 3.min(right);
            }
            low.truncate(low_cap);
        }

        let mut check_sets: Vec<Vec<u32>> = vec![Vec::new(); right];
        let mut ring_used = vec![0usize; right];
        if right >= 3 {
            // Spread the low-degree nodes over distinct ring positions.
            let mut positions: Vec<usize> =
                rand::seq::index::sample(rng, right, low.len().min(right)).into_vec();
            positions.sort_unstable();
            for (slot, &l) in low.iter().enumerate() {
                let p = positions[slot % positions.len()];
                check_sets[p].push(l as u32);
                ring_used[p] += 1;
                if left_degrees[l] == 2 {
                    let q = (p + 1) % right;
                    check_sets[q].push(l as u32);
                    ring_used[q] += 1;
                }
            }
        } else {
            // Degenerate tiny level: connect low-degree nodes directly.
            for &l in &low {
                for set in check_sets.iter_mut().take(left_degrees[l].min(right)) {
                    set.push(l as u32);
                }
            }
        }

        // Remaining (degree ≥ 3) nodes follow the requested check-side model.
        let rest: Vec<usize> = (0..left).filter(|&l| left_degrees[l] >= 3).collect();
        match check_side {
            CheckSide::Poisson => {
                for &l in &rest {
                    // `deg` distinct check nodes chosen uniformly at random.
                    for c in rand::seq::index::sample(rng, right, left_degrees[l]) {
                        check_sets[c].push(l as u32);
                    }
                }
            }
            CheckSide::Regular => {
                // Configuration model over the remaining sockets: spread them
                // as evenly as possible given what the ring already consumed,
                // shuffle the left sockets, and match them up.
                let rest_edges: usize = rest.iter().map(|&l| left_degrees[l]).sum();
                let ring_edges: usize = ring_used.iter().sum();
                let targets = right_regular_degrees(rest_edges + ring_edges, right);
                let mut right_sockets = Vec::with_capacity(rest_edges);
                for (node, &t) in targets.iter().enumerate() {
                    let want = t.saturating_sub(ring_used[node]);
                    right_sockets.extend(std::iter::repeat_n(node as u32, want));
                }
                // Rounding against the ring usage can leave us short; top up
                // round-robin so every remaining socket has a home.
                let mut next = 0usize;
                while right_sockets.len() < rest_edges {
                    right_sockets.push((next % right) as u32);
                    next += 1;
                }
                let mut left_sockets = Vec::with_capacity(rest_edges);
                for &l in &rest {
                    left_sockets.extend(std::iter::repeat_n(l as u32, left_degrees[l]));
                }
                left_sockets.shuffle(rng);
                for (i, &l) in left_sockets.iter().enumerate() {
                    check_sets[right_sockets[i] as usize].push(l);
                }
            }
        }
        // Sort and de-duplicate neighbours within each check node (a repeated
        // neighbour cancels out of the XOR and would silently weaken the
        // constraint).
        let mut edges = 0;
        for set in &mut check_sets {
            set.sort_unstable();
            set.dedup();
            edges += set.len();
        }
        let mut left_neighbors: Vec<Vec<u32>> = vec![Vec::new(); left];
        for (c, set) in check_sets.iter().enumerate() {
            for &l in set {
                left_neighbors[l as usize].push(c as u32);
            }
        }
        BipartiteGraph {
            left,
            right,
            check_neighbors: check_sets,
            left_neighbors,
            edges,
        }
    }

    /// Number of left (message) nodes.
    pub fn left(&self) -> usize {
        self.left
    }

    /// Number of right (check) nodes.
    pub fn right(&self) -> usize {
        self.right
    }

    /// Total number of edges.
    pub fn edges(&self) -> usize {
        self.edges
    }

    /// Left neighbours of check node `c`.
    pub fn check_neighbors(&self, c: usize) -> &[u32] {
        &self.check_neighbors[c]
    }

    /// Check nodes adjacent to left node `l`.
    pub fn left_neighbors(&self, l: usize) -> &[u32] {
        &self.left_neighbors[l]
    }

    /// Average degree of the left nodes (XORs per message packet).
    pub fn average_left_degree(&self) -> f64 {
        self.edges as f64 / self.left as f64
    }

    /// Average degree of the check nodes (XORs per check packet).
    pub fn average_check_degree(&self) -> f64 {
        self.edges as f64 / self.right as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::SeedableRng;

    fn graph(left: usize, right: usize, d: usize, seed: u64) -> BipartiteGraph {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        BipartiteGraph::random(
            left,
            right,
            &DegreeDistribution::heavy_tail(d),
            CheckSide::Poisson,
            &mut rng,
        )
    }

    fn graph_regular(left: usize, right: usize, d: usize, seed: u64) -> BipartiteGraph {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        BipartiteGraph::random(
            left,
            right,
            &DegreeDistribution::heavy_tail(d),
            CheckSide::Regular,
            &mut rng,
        )
    }

    #[test]
    fn adjacency_lists_are_mirror_images() {
        let g = graph(500, 250, 20, 1);
        let mut from_checks = 0;
        for c in 0..g.right() {
            for &l in g.check_neighbors(c) {
                assert!(
                    g.left_neighbors(l as usize).contains(&(c as u32)),
                    "edge ({l}, {c}) missing from left adjacency"
                );
                from_checks += 1;
            }
        }
        let from_left: usize = (0..g.left()).map(|l| g.left_neighbors(l).len()).sum();
        assert_eq!(from_checks, from_left);
        assert_eq!(from_checks, g.edges());
    }

    #[test]
    fn no_duplicate_edges_within_a_check() {
        let g = graph(400, 200, 10, 2);
        for c in 0..g.right() {
            let nbrs = g.check_neighbors(c);
            let mut dedup = nbrs.to_vec();
            dedup.dedup();
            assert_eq!(
                dedup.len(),
                nbrs.len(),
                "check {c} has duplicate neighbours"
            );
        }
    }

    #[test]
    fn every_left_node_is_covered() {
        let g = graph(1000, 500, 20, 3);
        for l in 0..g.left() {
            assert!(
                !g.left_neighbors(l).is_empty(),
                "left node {l} has no check neighbours and could never be recovered"
            );
        }
    }

    #[test]
    fn construction_is_deterministic_in_the_seed() {
        let a = graph(300, 150, 20, 42);
        let b = graph(300, 150, 20, 42);
        let c = graph(300, 150, 20, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn average_degree_tracks_distribution() {
        let dist = DegreeDistribution::heavy_tail(20);
        let g = graph(5000, 2500, 20, 4);
        // Degrees follow largest-remainder rounding, but the stopping-set
        // conditioning promotes the excess degree-2 nodes to degree 3, so the
        // realised average sits slightly above the design value.
        assert!(g.average_left_degree() >= dist.mean() - 0.05);
        assert!(g.average_left_degree() <= dist.mean() + 0.25);
        assert!((g.average_check_degree() - 2.0 * g.average_left_degree()).abs() < 1e-9);
    }

    #[test]
    fn degree_capped_by_right_count() {
        // With only 3 check nodes, no left node can exceed degree 3.
        let g = graph(50, 3, 100, 5);
        for l in 0..g.left() {
            assert!(g.left_neighbors(l).len() <= 3);
        }
    }

    #[test]
    fn regular_check_side_equalises_check_degrees() {
        let g = graph_regular(2000, 1000, 20, 6);
        let degs: Vec<usize> = (0..g.right()).map(|c| g.check_neighbors(c).len()).collect();
        let min = *degs.iter().min().unwrap();
        let max = *degs.iter().max().unwrap();
        // De-duplication can shave an edge or two off a check, but the spread
        // must stay far tighter than a Poisson profile (whose min would be
        // several edges below the mean at this size).
        assert!(max - min <= 3, "check degree spread {min}..{max} too wide");
        // Mirror-image invariant still holds.
        let from_left: usize = (0..g.left()).map(|l| g.left_neighbors(l).len()).sum();
        assert_eq!(from_left, g.edges());
    }

    #[test]
    fn every_left_node_is_covered_regular_mode() {
        let g = graph_regular(1000, 500, 20, 7);
        for l in 0..g.left() {
            assert!(!g.left_neighbors(l).is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn prop_graph_invariants(
            left in 2usize..400,
            ratio in 2usize..4,
            d in 3usize..40,
            regular in proptest::bool::ANY,
            seed in any::<u64>(),
        ) {
            let right = (left / ratio).max(1);
            let side = if regular { CheckSide::Regular } else { CheckSide::Poisson };
            let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
            let g = BipartiteGraph::random(left, right, &DegreeDistribution::heavy_tail(d), side, &mut rng);
            prop_assert_eq!(g.left(), left);
            prop_assert_eq!(g.right(), right);
            let edge_sum: usize = (0..right).map(|c| g.check_neighbors(c).len()).sum();
            prop_assert_eq!(edge_sum, g.edges());
            for c in 0..right {
                for &l in g.check_neighbors(c) {
                    prop_assert!((l as usize) < left);
                }
            }
        }
    }
}
