//! Degree distributions for the irregular bipartite graphs inside a Tornado
//! code.
//!
//! The choice of degree distribution is what makes Tornado codes work: the
//! paper's companion analysis (Luby, Mitzenmacher, Shokrollahi, Spielman,
//! Stemann — "Practical Loss-Resilient Codes", STOC '97, reference \[8\]) shows
//! that carefully chosen *irregular* distributions let the XOR peeling decoder
//! recover from a fraction of erasures approaching the capacity bound, while
//! regular graphs stall far from it.  The paper does not publish the exact
//! Tornado A / Tornado B sequences, so this module provides the published
//! families plus the knobs needed to calibrate them empirically (see
//! `profile.rs` and EXPERIMENTS.md):
//!
//! * [`DegreeDistribution::HeavyTail`] — the heavy-tail distribution of the
//!   STOC '97 analysis (edge fractions `λ_i ∝ 1/(i−1)`).
//! * [`DegreeDistribution::CheckConcentrated`] — the right-regular sequences
//!   of Shokrollahi's later analysis (edge fractions from the power series of
//!   `1 − (1 − x)^{1/(a−1)}`), which pair with constant-degree check nodes and
//!   behave noticeably better at finite block lengths.
//! * [`DegreeDistribution::Regular`] — an ablation baseline.
//!
//! Throughout, the `pmf` is expressed in the **node perspective** (fraction of
//! message nodes with a given degree); conversions from the edge perspective
//! used in the analytical literature are done inside the constructors.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A named left-degree distribution for one bipartite graph level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DegreeDistribution {
    /// The truncated heavy-tail distribution of Luby et al.
    ///
    /// In the *edge* perspective used by the original analysis the fraction of
    /// edges attached to left nodes of degree `i` is
    /// `λ_i = 1 / (H(D) · (i − 1))` for `i ∈ {2, …, D+1}` (`H(D)` = harmonic
    /// number).  Converted to the *node* perspective (divide by `i` and
    /// renormalise), the fraction of nodes of degree `i` is
    /// `(D + 1) / (D · i · (i − 1))`, and the average node degree is
    /// `H(D) · (D + 1) / D ≈ ln D`.
    HeavyTail {
        /// Truncation parameter `D` (maximum degree is `D + 1`).
        max_degree: usize,
    },
    /// Right-regular ("check-concentrated") sequences: the edge fractions are
    /// the power-series coefficients of `1 − (1 − x)^{1/(a−1)}` truncated at
    /// `max_degree`, with the residual tail mass assigned to `max_degree`.
    /// Designed to pair with check nodes of constant degree `a`
    /// ([`crate::graph::CheckSide::Regular`]).
    CheckConcentrated {
        /// The design check-node degree `a`.
        check_degree: usize,
        /// Maximum message-node degree retained after truncation.
        max_degree: usize,
    },
    /// All nodes share a single degree — useful as an ablation baseline
    /// (regular codes have a markedly worse peeling threshold, which the
    /// ablation benchmark demonstrates).
    Regular {
        /// The common degree.
        degree: usize,
    },
}

impl DegreeDistribution {
    /// The heavy-tail distribution with truncation parameter `D`.
    pub const fn heavy_tail(max_degree: usize) -> Self {
        DegreeDistribution::HeavyTail { max_degree }
    }

    /// The right-regular / check-concentrated distribution for check degree
    /// `a`, truncated at `max_degree`.
    pub const fn check_concentrated(check_degree: usize, max_degree: usize) -> Self {
        DegreeDistribution::CheckConcentrated {
            check_degree,
            max_degree,
        }
    }

    /// Probability mass function over node degrees.
    ///
    /// Returns `(degree, probability)` pairs in increasing degree order; the
    /// probabilities sum to 1.
    pub fn pmf(&self) -> Vec<(usize, f64)> {
        match self {
            DegreeDistribution::HeavyTail { max_degree } => {
                let d = (*max_degree).max(1);
                // Node-perspective fractions: p_i ∝ 1 / (i · (i − 1)), whose
                // normalising constant over i = 2..=D+1 is D / (D + 1).
                let norm = (d + 1) as f64 / d as f64;
                (2..=d + 1)
                    .map(|i| (i, norm / ((i * (i - 1)) as f64)))
                    .collect()
            }
            DegreeDistribution::CheckConcentrated {
                check_degree,
                max_degree,
            } => {
                let a = (*check_degree).max(3) as f64;
                let alpha = 1.0 / (a - 1.0);
                let d = (*max_degree).max(2);
                // Edge-perspective coefficients of 1 − (1 − x)^α:
                //   c_1 = α,  c_{j+1} = c_j · (j − α) / (j + 1).
                let mut edge = Vec::with_capacity(d);
                let mut c = alpha;
                for j in 1..=d {
                    edge.push((j, c));
                    c *= (j as f64 - alpha) / (j as f64 + 1.0);
                }
                // Renormalise after truncation (the truncated tail is what
                // gives the construction a positive rate; see module docs).
                let total: f64 = edge.iter().map(|(_, p)| p).sum();
                for (_, p) in edge.iter_mut() {
                    *p /= total;
                }
                // Convert to node perspective.
                let node_norm: f64 = edge.iter().map(|(i, p)| p / *i as f64).sum();
                edge.into_iter()
                    .map(|(i, p)| (i, p / i as f64 / node_norm))
                    .collect()
            }
            DegreeDistribution::Regular { degree } => vec![((*degree).max(1), 1.0)],
        }
    }

    /// Expected (average) node degree of the distribution.
    ///
    /// This is the per-packet XOR cost driving the `(k + ℓ) ln(1/ε)`
    /// encoding/decoding time in Table 1 of the paper.
    pub fn mean(&self) -> f64 {
        self.pmf().iter().map(|(d, p)| *d as f64 * p).sum()
    }

    /// Maximum degree of the distribution.
    pub fn max(&self) -> usize {
        self.pmf().last().map(|(d, _)| *d).unwrap_or(0)
    }

    /// Deterministically allocate degrees to `count` nodes so that the
    /// realised degree histogram matches the distribution as closely as
    /// possible (largest-remainder rounding), then shuffle the assignment.
    ///
    /// Deterministic proportions rather than i.i.d. sampling noticeably
    /// reduces the variance of the reception overhead at the file sizes the
    /// paper benchmarks, because the realised edge counts cannot drift from
    /// their design values.
    pub fn degree_sequence<R: Rng + ?Sized>(&self, count: usize, rng: &mut R) -> Vec<usize> {
        if count == 0 {
            return Vec::new();
        }
        let pmf = self.pmf();
        // Largest-remainder method: floor everything, then hand out the
        // leftover nodes to the entries with the largest fractional part.
        let mut counts: Vec<(usize, usize, f64)> = pmf
            .iter()
            .map(|(deg, p)| {
                let exact = p * count as f64;
                (*deg, exact.floor() as usize, exact - exact.floor())
            })
            .collect();
        let assigned: usize = counts.iter().map(|(_, c, _)| *c).sum();
        let mut leftover = count - assigned.min(count);
        // Highest fractional remainder first.
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by(|&a, &b| counts[b].2.partial_cmp(&counts[a].2).unwrap());
        let mut cursor = 0;
        while leftover > 0 {
            let idx = order[cursor % order.len()];
            counts[idx].1 += 1;
            leftover -= 1;
            cursor += 1;
        }
        let mut seq = Vec::with_capacity(count);
        for (deg, c, _) in &counts {
            seq.extend(std::iter::repeat_n(*deg, *c));
        }
        // Rounding can only ever produce exactly `count` entries here, but be
        // defensive against pathological pmfs.
        seq.truncate(count);
        while seq.len() < count {
            seq.push(pmf[0].0);
        }
        seq.shuffle(rng);
        seq
    }
}

/// Split `total_edges` sockets across `nodes` check nodes as evenly as
/// possible (right-regular assignment): every node receives either
/// `⌊total/nodes⌋` or `⌈total/nodes⌉` sockets.
pub fn right_regular_degrees(total_edges: usize, nodes: usize) -> Vec<usize> {
    if nodes == 0 {
        return Vec::new();
    }
    let base = total_edges / nodes;
    let extra = total_edges % nodes;
    (0..nodes)
        .map(|i| if i < extra { base + 1 } else { base })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn heavy_tail_pmf_sums_to_one() {
        for d in [2usize, 5, 10, 20, 50, 100] {
            let dist = DegreeDistribution::heavy_tail(d);
            let total: f64 = dist.pmf().iter().map(|(_, p)| p).sum();
            assert!((total - 1.0).abs() < 1e-9, "D = {d}: total = {total}");
        }
    }

    #[test]
    fn heavy_tail_mean_matches_closed_form() {
        for d in [5usize, 20, 33, 100] {
            let dist = DegreeDistribution::heavy_tail(d);
            let h: f64 = (1..=d).map(|j| 1.0 / j as f64).sum();
            let expect = h * (d + 1) as f64 / d as f64;
            assert!((dist.mean() - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn heavy_tail_edge_perspective_is_truncated_harmonic() {
        // Multiplying the node fractions by the degree and renormalising must
        // give back the edge-perspective λ_i = 1/(H(D)(i−1)) of the original
        // analysis.
        let d = 20usize;
        let dist = DegreeDistribution::heavy_tail(d);
        let h: f64 = (1..=d).map(|j| 1.0 / j as f64).sum();
        let pmf = dist.pmf();
        let mean = dist.mean();
        for (i, p) in pmf {
            let edge_fraction = i as f64 * p / mean;
            let expect = 1.0 / (h * (i - 1) as f64);
            assert!(
                (edge_fraction - expect).abs() < 1e-9,
                "degree {i}: edge fraction {edge_fraction} vs {expect}"
            );
        }
    }

    #[test]
    fn check_concentrated_pmf_sums_to_one() {
        for a in [4usize, 6, 8, 12] {
            for d in [30usize, 100, 300] {
                let dist = DegreeDistribution::check_concentrated(a, d);
                let total: f64 = dist.pmf().iter().map(|(_, p)| p).sum();
                assert!((total - 1.0).abs() < 1e-9, "a = {a}, D = {d}");
            }
        }
    }

    #[test]
    fn check_concentrated_edge_fractions_match_power_series() {
        // The edge fractions must be proportional to the power-series
        // coefficients of 1 − (1 − x)^{1/(a−1)}: c_1 = α, c_2 = α(1 − α)/2, so
        // their ratio is independent of the truncation normalisation.
        let a = 8usize;
        let dist = DegreeDistribution::check_concentrated(a, 200);
        let alpha = 1.0 / (a as f64 - 1.0);
        let pmf = dist.pmf();
        let mean = dist.mean();
        let edge: Vec<(usize, f64)> = pmf
            .iter()
            .map(|(i, p)| (*i, *i as f64 * p / mean))
            .collect();
        assert_eq!(edge[0].0, 1);
        assert_eq!(edge[1].0, 2);
        let expect_ratio = alpha / (alpha * (1.0 - alpha) / 2.0);
        let got_ratio = edge[0].1 / edge[1].1;
        assert!(
            (got_ratio - expect_ratio).abs() < 1e-6,
            "ratio {got_ratio} vs {expect_ratio}"
        );
    }

    #[test]
    fn heavy_tail_min_degree_is_two() {
        let dist = DegreeDistribution::heavy_tail(20);
        assert!(dist.pmf().iter().all(|(d, _)| *d >= 2));
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let seq = dist.degree_sequence(1000, &mut rng);
        assert!(seq.iter().all(|&d| (2..=21).contains(&d)));
    }

    #[test]
    fn degree_sequence_has_requested_length_and_mean() {
        let dist = DegreeDistribution::heavy_tail(20);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let seq = dist.degree_sequence(10_000, &mut rng);
        assert_eq!(seq.len(), 10_000);
        let mean = seq.iter().sum::<usize>() as f64 / seq.len() as f64;
        assert!(
            (mean - dist.mean()).abs() < 0.05,
            "realised mean {mean} vs design {}",
            dist.mean()
        );
    }

    #[test]
    fn degree_sequence_handles_tiny_counts() {
        let dist = DegreeDistribution::heavy_tail(20);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        assert_eq!(dist.degree_sequence(0, &mut rng).len(), 0);
        assert_eq!(dist.degree_sequence(1, &mut rng).len(), 1);
        assert_eq!(dist.degree_sequence(3, &mut rng).len(), 3);
    }

    #[test]
    fn regular_distribution_is_constant() {
        let dist = DegreeDistribution::Regular { degree: 3 };
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let seq = dist.degree_sequence(100, &mut rng);
        assert!(seq.iter().all(|&d| d == 3));
        assert!((dist.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn right_regular_degrees_sum_and_balance() {
        let degs = right_regular_degrees(1003, 100);
        assert_eq!(degs.iter().sum::<usize>(), 1003);
        let min = *degs.iter().min().unwrap();
        let max = *degs.iter().max().unwrap();
        assert!(max - min <= 1);
        assert!(right_regular_degrees(10, 0).is_empty());
    }

    #[test]
    fn larger_d_means_larger_average_degree() {
        let a = DegreeDistribution::heavy_tail(20).mean();
        let b = DegreeDistribution::heavy_tail(50).mean();
        assert!(b > a, "denser codes must pay more XORs per packet");
    }

    #[test]
    fn check_concentrated_mean_grows_with_check_degree() {
        let lo = DegreeDistribution::check_concentrated(6, 200).mean();
        let hi = DegreeDistribution::check_concentrated(12, 200).mean();
        assert!(hi > lo);
    }
}
