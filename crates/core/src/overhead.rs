//! Reception-overhead statistics: the machinery behind Figure 2 of the paper
//! ("Percent Unfinished vs. Length Overhead", 10 000 runs) and the summary
//! numbers quoted in Section 5.2 (average / maximum / standard deviation of
//! the overhead for Tornado A and Tornado B).

use serde::{Deserialize, Serialize};

/// Summary statistics over a set of reception-overhead samples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadStats {
    /// Individual overhead samples, sorted ascending.
    samples: Vec<f64>,
}

impl OverheadStats {
    /// Build statistics from raw overhead samples (each sample is the ε at
    /// which one decode trial completed).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.sort_by(|a, b| a.partial_cmp(b).expect("overhead samples are finite"));
        OverheadStats { samples }
    }

    /// Number of trials.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if no samples were collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean overhead.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().sum::<f64>() / self.samples.len() as f64
    }

    /// Maximum overhead observed.
    pub fn max(&self) -> f64 {
        self.samples.last().copied().unwrap_or(0.0)
    }

    /// Minimum overhead observed.
    pub fn min(&self) -> f64 {
        self.samples.first().copied().unwrap_or(0.0)
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        let n = self.samples.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .samples
            .iter()
            .map(|s| (s - mean) * (s - mean))
            .sum::<f64>()
            / (n - 1) as f64;
        var.sqrt()
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((self.samples.len() as f64 * q).ceil() as usize)
            .saturating_sub(1)
            .min(self.samples.len() - 1);
        self.samples[rank]
    }

    /// Fraction of trials still unfinished after receiving `(1 + overhead)·k`
    /// packets — the y-axis of Figure 2.
    pub fn fraction_unfinished_at(&self, overhead: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        // A trial is unfinished at `overhead` if it needed strictly more.
        let finished = self.samples.partition_point(|&s| s <= overhead);
        (self.samples.len() - finished) as f64 / self.samples.len() as f64
    }

    /// The "percent unfinished vs. length overhead" curve of Figure 2,
    /// evaluated on a regular grid from 0 to `max_overhead` with `points`
    /// samples.  Returns `(overhead, percent_unfinished)` pairs.
    pub fn unfinished_curve(&self, max_overhead: f64, points: usize) -> Vec<(f64, f64)> {
        let points = points.max(2);
        (0..points)
            .map(|i| {
                let x = max_overhead * i as f64 / (points - 1) as f64;
                (x, 100.0 * self.fraction_unfinished_at(x))
            })
            .collect()
    }

    /// The overhead at which `percent` of clients have finished (e.g. the
    /// paper's statement "after receiving 6 % overhead, 90 % of the clients
    /// could reconstruct the source data" corresponds to `percent = 90`).
    pub fn overhead_for_completion_percent(&self, percent: f64) -> f64 {
        self.quantile(percent / 100.0)
    }

    /// Borrow the sorted samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> OverheadStats {
        OverheadStats::from_samples(vec![0.05, 0.03, 0.07, 0.04, 0.06])
    }

    #[test]
    fn basic_moments() {
        let s = stats();
        assert_eq!(s.len(), 5);
        assert!((s.mean() - 0.05).abs() < 1e-12);
        assert_eq!(s.max(), 0.07);
        assert_eq!(s.min(), 0.03);
        // Sample variance of {0.03, 0.04, 0.05, 0.06, 0.07} is 2.5e-4.
        let expected_sd = 2.5e-4f64.sqrt();
        assert!((s.std_dev() - expected_sd).abs() < 1e-9, "{}", s.std_dev());
    }

    #[test]
    fn unfinished_fraction_is_a_step_function() {
        let s = stats();
        assert_eq!(s.fraction_unfinished_at(0.0), 1.0);
        assert_eq!(s.fraction_unfinished_at(0.05), 0.4);
        assert_eq!(s.fraction_unfinished_at(0.07), 0.0);
        assert_eq!(s.fraction_unfinished_at(1.0), 0.0);
    }

    #[test]
    fn quantiles_and_completion_percent() {
        let s = stats();
        assert_eq!(s.quantile(0.0), 0.03);
        assert_eq!(s.quantile(1.0), 0.07);
        assert_eq!(s.overhead_for_completion_percent(60.0), 0.05);
    }

    #[test]
    fn unfinished_curve_is_monotone_nonincreasing() {
        let s = stats();
        let curve = s.unfinished_curve(0.1, 21);
        assert_eq!(curve.len(), 21);
        for w in curve.windows(2) {
            assert!(w[1].1 <= w[0].1);
        }
        assert_eq!(curve[0].1, 100.0);
        assert_eq!(curve.last().unwrap().1, 0.0);
    }

    #[test]
    fn empty_and_singleton_are_safe() {
        let empty = OverheadStats::from_samples(vec![]);
        assert!(empty.is_empty());
        assert_eq!(empty.mean(), 0.0);
        assert_eq!(empty.std_dev(), 0.0);
        assert_eq!(empty.quantile(0.5), 0.0);
        let one = OverheadStats::from_samples(vec![0.042]);
        assert_eq!(one.mean(), 0.042);
        assert_eq!(one.std_dev(), 0.0);
    }
}
