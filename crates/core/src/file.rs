//! Splitting a byte stream ("the file") into fixed-length source packets and
//! reassembling it, as every bulk-data application in the paper does before
//! encoding.
//!
//! The paper's benchmarks use 1 KB packets; its prototype uses 500 B payloads.
//! Both are just parameters here.  The original length is carried alongside
//! the packets so that the padding added to the last packet can be stripped on
//! reassembly (in the real protocol the length travels on the control channel,
//! see `df-proto`).

use crate::error::{Result, TornadoError};

/// A file split into equal-length source packets, ready for encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketizedFile {
    /// The source packets, each exactly `packet_size` bytes (the last one is
    /// zero-padded).
    packets: Vec<Vec<u8>>,
    /// Original file length in bytes, before padding.
    file_len: usize,
    /// Packet payload size in bytes.
    packet_size: usize,
}

impl PacketizedFile {
    /// Split `data` into packets of `packet_size` bytes, zero-padding the
    /// final packet.
    ///
    /// # Errors
    ///
    /// Returns [`TornadoError::InvalidParameters`] if `packet_size == 0` or
    /// `data` is empty (an empty file has no source packets to protect).
    pub fn split(data: &[u8], packet_size: usize) -> Result<Self> {
        if packet_size == 0 {
            return Err(TornadoError::InvalidParameters {
                reason: "packet size must be positive".to_string(),
            });
        }
        if data.is_empty() {
            return Err(TornadoError::InvalidParameters {
                reason: "cannot packetize an empty file".to_string(),
            });
        }
        let mut packets = Vec::with_capacity(data.len().div_ceil(packet_size));
        for chunk in data.chunks(packet_size) {
            let mut pkt = chunk.to_vec();
            pkt.resize(packet_size, 0);
            packets.push(pkt);
        }
        Ok(PacketizedFile {
            packets,
            file_len: data.len(),
            packet_size,
        })
    }

    /// Wrap already-packetized data (all packets must share one length).
    ///
    /// `file_len` is the logical file length; it must fit inside the packets.
    ///
    /// # Errors
    ///
    /// Returns [`TornadoError::MalformedInput`] on inconsistent packet lengths
    /// or a `file_len` that does not fit.
    pub fn from_packets(packets: Vec<Vec<u8>>, file_len: usize) -> Result<Self> {
        let packet_size = packets.first().map(|p| p.len()).unwrap_or(0);
        if packet_size == 0 || packets.iter().any(|p| p.len() != packet_size) {
            return Err(TornadoError::MalformedInput {
                reason: "packets must be non-empty and of equal length".to_string(),
            });
        }
        let capacity = packets.len() * packet_size;
        if file_len > capacity || file_len + packet_size <= capacity {
            return Err(TornadoError::MalformedInput {
                reason: format!(
                    "file length {file_len} inconsistent with {} packets of {packet_size} bytes",
                    packets.len()
                ),
            });
        }
        Ok(PacketizedFile {
            packets,
            file_len,
            packet_size,
        })
    }

    /// Number of source packets `k`.
    pub fn num_packets(&self) -> usize {
        self.packets.len()
    }

    /// Packet payload size in bytes.
    pub fn packet_size(&self) -> usize {
        self.packet_size
    }

    /// Original (unpadded) file length in bytes.
    pub fn file_len(&self) -> usize {
        self.file_len
    }

    /// Borrow the source packets.
    pub fn packets(&self) -> &[Vec<u8>] {
        &self.packets
    }

    /// Consume and return the source packets.
    pub fn into_packets(self) -> Vec<Vec<u8>> {
        self.packets
    }

    /// Reassemble the original byte stream, stripping the final packet's
    /// padding.
    pub fn reassemble(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.file_len);
        for pkt in &self.packets {
            out.extend_from_slice(pkt);
        }
        out.truncate(self.file_len);
        out
    }
}

/// Reassemble a file from decoded source packets and the original length.
///
/// Convenience wrapper for receivers that obtained the packets from a decoder
/// and the length from the control channel.
pub fn reassemble_file(packets: &[Vec<u8>], file_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(file_len);
    for pkt in packets {
        out.extend_from_slice(pkt);
    }
    out.truncate(file_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_pads_last_packet() {
        let data: Vec<u8> = (0..10u8).collect();
        let f = PacketizedFile::split(&data, 4).unwrap();
        assert_eq!(f.num_packets(), 3);
        assert_eq!(f.packets()[2], vec![8, 9, 0, 0]);
        assert_eq!(f.file_len(), 10);
        assert_eq!(f.reassemble(), data);
    }

    #[test]
    fn exact_multiple_has_no_padding() {
        let data = vec![7u8; 16];
        let f = PacketizedFile::split(&data, 4).unwrap();
        assert_eq!(f.num_packets(), 4);
        assert_eq!(f.reassemble(), data);
    }

    #[test]
    fn empty_file_rejected() {
        assert!(PacketizedFile::split(&[], 4).is_err());
        assert!(PacketizedFile::split(&[1, 2, 3], 0).is_err());
    }

    #[test]
    fn from_packets_validates_consistency() {
        let pkts = vec![vec![1u8; 4], vec![2u8; 4]];
        assert!(PacketizedFile::from_packets(pkts.clone(), 7).is_ok());
        assert!(PacketizedFile::from_packets(pkts.clone(), 9).is_err());
        assert!(PacketizedFile::from_packets(pkts.clone(), 3).is_err());
        let uneven = vec![vec![1u8; 4], vec![2u8; 3]];
        assert!(PacketizedFile::from_packets(uneven, 7).is_err());
    }

    #[test]
    fn reassemble_file_truncates_padding() {
        let packets = vec![vec![1u8, 2, 3, 4], vec![5u8, 0, 0, 0]];
        assert_eq!(reassemble_file(&packets, 5), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn single_byte_file() {
        let f = PacketizedFile::split(&[42u8], 512).unwrap();
        assert_eq!(f.num_packets(), 1);
        assert_eq!(f.reassemble(), vec![42u8]);
    }
}
