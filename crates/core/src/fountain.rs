//! The digital-fountain abstraction and the carousel approximation.
//!
//! Section 3 of the paper defines the *ideal* digital fountain: an unbounded
//! stream of distinct encoding packets from which **any** subset of size `k`
//! reconstructs the source.  Section 4 approximates it by encoding with a
//! fixed stretch factor and cycling through the `n` encoding packets (the
//! carousel): a receiver that joins at an arbitrary time and suffers
//! arbitrary loss keeps listening until its decoder completes.
//!
//! [`PacketStream`] is the common interface; [`Carousel`] is the concrete
//! approximation used by the simulations and the prototype server.  The
//! carousel transmits a fresh pseudo-random permutation of the encoding on
//! every cycle, which is what the paper's simulations do ("the server then
//! simply cycled through a random permutation of the source and redundant
//! packets", Section 7.1).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// An unbounded source of encoding-packet indices, in transmission order.
///
/// Implementations decide how the index sequence is generated; consumers pull
/// one index per packet-transmission opportunity.  The ideal digital fountain
/// would never repeat an index; practical approximations repeat after a full
/// cycle of the finite encoding.
pub trait PacketStream {
    /// The index of the next encoding packet to transmit.
    fn next_index(&mut self) -> usize;

    /// Total number of distinct encoding packets this stream draws from.
    fn universe(&self) -> usize;

    /// Number of packet transmissions produced so far.
    fn transmitted(&self) -> u64;
}

/// Carousel transmission order over a finite encoding of `n` packets.
///
/// Each cycle is an independent pseudo-random permutation of `0..n`, seeded
/// deterministically so that a sender can be reproduced exactly in tests and
/// simulations.
#[derive(Debug, Clone)]
pub struct Carousel {
    n: usize,
    rng: ChaCha8Rng,
    current: Vec<usize>,
    pos: usize,
    transmitted: u64,
    shuffle: bool,
}

impl Carousel {
    /// A carousel over `n` packets that transmits a fresh random permutation
    /// each cycle.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n > 0, "carousel needs at least one packet");
        let mut c = Carousel {
            n,
            rng: ChaCha8Rng::seed_from_u64(seed),
            current: (0..n).collect(),
            pos: 0,
            transmitted: 0,
            shuffle: true,
        };
        c.reshuffle();
        c
    }

    /// A carousel that cycles through the packets in index order without
    /// shuffling (the plain data-carousel / broadcast-disk behaviour the paper
    /// contrasts with in Section 1).
    pub fn sequential(n: usize) -> Self {
        assert!(n > 0, "carousel needs at least one packet");
        Carousel {
            n,
            rng: ChaCha8Rng::seed_from_u64(0),
            current: (0..n).collect(),
            pos: 0,
            transmitted: 0,
            shuffle: false,
        }
    }

    fn reshuffle(&mut self) {
        if self.shuffle {
            self.current.shuffle(&mut self.rng);
        }
        self.pos = 0;
    }

    /// Number of completed full cycles.
    pub fn cycles_completed(&self) -> u64 {
        self.transmitted / self.n as u64
    }
}

impl PacketStream for Carousel {
    fn next_index(&mut self) -> usize {
        if self.pos == self.n {
            self.reshuffle();
        }
        let idx = self.current[self.pos];
        self.pos += 1;
        self.transmitted += 1;
        idx
    }

    fn universe(&self) -> usize {
        self.n
    }

    fn transmitted(&self) -> u64 {
        self.transmitted
    }
}

/// Reception-side bookkeeping shared by the simulations and the prototype
/// client: how many packets were received in total, how many were distinct,
/// and therefore the reception, coding and distinctness efficiencies of
/// Section 7.3.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReceptionCounter {
    distinct: usize,
    total: usize,
    seen: Vec<bool>,
}

impl ReceptionCounter {
    /// Counter over an encoding of `n` packets.
    pub fn new(n: usize) -> Self {
        ReceptionCounter {
            distinct: 0,
            total: 0,
            seen: vec![false; n],
        }
    }

    /// Record the reception of encoding packet `index`; returns `true` if it
    /// was new.
    pub fn record(&mut self, index: usize) -> bool {
        self.total += 1;
        if self.seen[index] {
            false
        } else {
            self.seen[index] = true;
            self.distinct += 1;
            true
        }
    }

    /// Total packets received (including duplicates).
    pub fn total(&self) -> usize {
        self.total
    }

    /// Distinct packets received.
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// Duplicate receptions.
    pub fn duplicates(&self) -> usize {
        self.total - self.distinct
    }

    /// Reception efficiency `η = k / total` for a file of `k` source packets
    /// (Section 6 definition).
    pub fn reception_efficiency(&self, k: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        k as f64 / self.total as f64
    }

    /// Coding efficiency `η_c = k / distinct` (Section 7.3).
    pub fn coding_efficiency(&self, k: usize) -> f64 {
        if self.distinct == 0 {
            return 0.0;
        }
        k as f64 / self.distinct as f64
    }

    /// Distinctness efficiency `η_d = distinct / total` (Section 7.3).
    pub fn distinctness_efficiency(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.distinct as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn carousel_covers_every_packet_each_cycle() {
        let mut c = Carousel::new(100, 7);
        for cycle in 0..3 {
            let batch: HashSet<usize> = (0..100).map(|_| c.next_index()).collect();
            assert_eq!(batch.len(), 100, "cycle {cycle} repeated a packet");
        }
        assert_eq!(c.cycles_completed(), 3);
        assert_eq!(c.transmitted(), 300);
    }

    #[test]
    fn carousel_cycles_use_different_permutations() {
        let mut c = Carousel::new(50, 1);
        let first: Vec<usize> = (0..50).map(|_| c.next_index()).collect();
        let second: Vec<usize> = (0..50).map(|_| c.next_index()).collect();
        assert_ne!(
            first, second,
            "consecutive cycles should be shuffled differently"
        );
    }

    #[test]
    fn sequential_carousel_preserves_order() {
        let mut c = Carousel::sequential(5);
        let got: Vec<usize> = (0..12).map(|_| c.next_index()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]);
    }

    #[test]
    fn carousel_is_deterministic_in_seed() {
        let mut a = Carousel::new(64, 9);
        let mut b = Carousel::new(64, 9);
        for _ in 0..200 {
            assert_eq!(a.next_index(), b.next_index());
        }
    }

    #[test]
    fn reception_counter_efficiencies() {
        let mut r = ReceptionCounter::new(8);
        for idx in [0usize, 1, 2, 2, 3, 3, 3] {
            r.record(idx);
        }
        assert_eq!(r.total(), 7);
        assert_eq!(r.distinct(), 4);
        assert_eq!(r.duplicates(), 3);
        assert!((r.distinctness_efficiency() - 4.0 / 7.0).abs() < 1e-12);
        assert!((r.coding_efficiency(3) - 0.75).abs() < 1e-12);
        assert!((r.reception_efficiency(3) - 3.0 / 7.0).abs() < 1e-12);
        // η = η_c · η_d as stated in Section 7.3.
        let eta = r.reception_efficiency(3);
        assert!((eta - r.coding_efficiency(3) * r.distinctness_efficiency()).abs() < 1e-12);
    }

    #[test]
    fn empty_counter_is_safe() {
        let r = ReceptionCounter::new(4);
        assert_eq!(r.reception_efficiency(4), 0.0);
        assert_eq!(r.coding_efficiency(4), 0.0);
        assert_eq!(r.distinctness_efficiency(), 0.0);
    }
}
