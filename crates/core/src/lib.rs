//! # df-core — Tornado codes and the digital fountain abstraction
//!
//! This crate implements the primary contribution of Byers, Luby,
//! Mitzenmacher and Rege, *"A Digital Fountain Approach to Reliable
//! Distribution of Bulk Data"* (SIGCOMM 1998):
//!
//! * **Tornado codes** ([`TornadoCode`]) — erasure codes built from a cascade
//!   of sparse random bipartite graphs plus a small conventional code, encoded
//!   and decoded with nothing but XORs.  They trade a small reception overhead
//!   (≈ 5 % for the [`TORNADO_A`] profile, ≈ 3 % for [`TORNADO_B`]) for
//!   encoding/decoding times that are orders of magnitude faster than
//!   Reed–Solomon codes at bulk-data scale (Tables 2 and 3 of the paper).
//! * **The digital fountain / carousel abstraction** ([`Carousel`],
//!   [`PacketStream`], [`ReceptionCounter`]) — the transmission model in which
//!   a server cycles endlessly through the encoding and each receiver listens,
//!   at a time of its choosing and over an arbitrarily lossy channel, until it
//!   has collected enough packets to decode.
//!
//! The companion crates build on these primitives: `df-sim` reproduces the
//! paper's simulation study (interleaved Reed–Solomon baseline, loss models,
//! reception-efficiency experiments), `df-mcast` implements the layered
//! multicast scheduling and congestion control of Section 7.1, and `df-proto`
//! is the prototype bulk-distribution protocol of Section 7.
//!
//! ## Quick start
//!
//! ```
//! use df_core::{PacketizedFile, TornadoCode};
//!
//! // A 100 kB "file" split into 1 kB packets, as in the paper's benchmarks.
//! let data = vec![0xabu8; 100 * 1024];
//! let file = PacketizedFile::split(&data, 1024).unwrap();
//! let code = TornadoCode::new_a(file.num_packets(), 0x5eed).unwrap();
//! let encoding = code.encode(file.packets()).unwrap();
//!
//! // A receiver that only sees the second half of the encoding still
//! // recovers the file: any sufficiently large subset will do.
//! let received: Vec<(usize, Vec<u8>)> = (code.n() / 2..code.n())
//!     .map(|i| (i, encoding[i].clone()))
//!     .collect();
//! let decoded = code.decode(&received).unwrap();
//! assert_eq!(df_core::reassemble_file(&decoded, data.len()), data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cascade;
pub mod codec;
pub mod decode;
pub mod degree;
pub mod encode;
pub mod error;
pub mod file;
pub mod fountain;
pub mod graph;
pub mod overhead;
pub mod profile;
pub mod rateless;
pub mod symbol;

pub use cascade::{Cascade, FinalCode, PacketRole};
pub use codec::TornadoCode;
pub use decode::{
    AddOutcome, OwnedPayloadDecoder, OwnedSymbolicDecoder, PayloadDecoder, PeelingDecoder,
    SymbolicDecoder,
};
pub use degree::DegreeDistribution;
pub use error::{Result, TornadoError};
pub use file::{reassemble_file, PacketizedFile};
pub use fountain::{Carousel, PacketStream, ReceptionCounter};
pub use graph::{BipartiteGraph, CheckSide};
pub use overhead::OverheadStats;
pub use profile::{TornadoProfile, RAPTOR_PRECODE, TORNADO_A, TORNADO_B};
pub use rateless::{
    DegreeTable, LtDecoder, LtEncoder, LtEquation, RaptorCode, RaptorDecoder, RobustSoliton,
    INACTIVATION_CAP, LT_DEFAULT_C, LT_DEFAULT_DELTA, RAPTOR_DEGREE_TABLE,
};
pub use symbol::{Mark, Symbol};
