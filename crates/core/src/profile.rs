//! Tornado code profiles: the parameter sets behind "Tornado A" and
//! "Tornado B" in the paper.
//!
//! The paper evaluates two codes built "using some of the principles described
//! in \[8\] and \[9\]" (Section 5.2) but does not publish their graph parameters.
//! We therefore define profiles in terms of the published trade-off:
//!
//! * **Tornado A** — lower average degree, fastest decoding, average reception
//!   overhead ≈ 0.05 (measured 0.0548 in the paper, max 0.0850).
//! * **Tornado B** — denser graphs, decoding a few times slower, average
//!   reception overhead ≈ 0.03 (measured 0.0306, max 0.0550).
//!
//! The concrete degree distributions below were calibrated empirically with
//! the symbolic decoder (the procedure and the measured overhead statistics
//! are recorded in EXPERIMENTS.md) so that at the paper's benchmark sizes the
//! overheads land in the right bands while keeping the A-vs-B ordering of
//! decode cost.

use crate::degree::DegreeDistribution;
use crate::graph::CheckSide;
use serde::Serialize;

/// Parameters describing one Tornado code construction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct TornadoProfile {
    /// Human-readable profile name ("tornado-a", "tornado-b", ...).
    pub name: &'static str,
    /// Left (message-node) degree distribution for every cascade graph.
    pub distribution: DegreeDistribution,
    /// How check-node degrees are assigned.
    pub check_side: CheckSide,
    /// Stretch factor `c = n / k`.  The paper uses `c = 2` throughout
    /// (Section 4) to keep memory and decode state proportional to the
    /// encoding length.
    pub stretch_factor: f64,
    /// Stop cascading when a level would have at most this many packets; the
    /// remaining redundancy is produced by a conventional (Cauchy
    /// Reed–Solomon) code over that final level.
    pub final_level_threshold: usize,
    /// The final level threshold also scales with `k` as
    /// `k / final_level_divisor` so that the Reed–Solomon block keeps good
    /// concentration for large files without dominating decode time.
    pub final_level_divisor: usize,
    /// When true, [`crate::Cascade`] keeps cascading past the threshold while
    /// the final Reed–Solomon block would exceed 256 packets and the
    /// redundancy budget still allows another level, so the final code stays
    /// in GF(2^8) — whose slice kernels are the fastest in the workspace —
    /// instead of spilling into GF(2^16).  Profiles whose *point* is a large
    /// MDS tail (Tornado B) leave this off and take the (also vectorized, but
    /// inherently slower) GF(2^16) path.
    pub prefer_gf8_final: bool,
}

impl TornadoProfile {
    /// The Tornado A profile: fastest decoding, small MDS tail.
    ///
    /// Calibration (see `examples/calibrate.rs` and EXPERIMENTS.md): heavy-tail
    /// `D = 8` graphs, right-regular check degrees, low-degree-node
    /// conditioning, and a `max(400, k/16)` cascade-stop threshold.  Measured
    /// mean reception overhead is ≈ 0.12 at 2 MB files and ≈ 0.094 at 16 MB
    /// files with a short tail (maximum ≈ 0.15).  This is roughly twice the
    /// overhead the paper reports for its hand-optimised (unpublished) Tornado
    /// A sequences; the gap and its cause are discussed in EXPERIMENTS.md.
    ///
    /// Field-selection recalibration: with `prefer_gf8_final` set, the
    /// cascade continues past the threshold until the final Reed–Solomon
    /// block fits in 256 packets, so A's final code runs over GF(2^8) at
    /// every file size.  Before this recalibration the final block sat just
    /// above 256 packets for typical `k` (e.g. 500 at `k = 1000`), forcing
    /// GF(2^16) and making the MDS tail — a few percent of the packets —
    /// dominate whole-file encode time (see BENCH_pr1.json).
    pub const fn tornado_a() -> Self {
        TornadoProfile {
            name: "tornado-a",
            distribution: DegreeDistribution::heavy_tail(8),
            check_side: CheckSide::Regular,
            stretch_factor: 2.0,
            final_level_threshold: 400,
            final_level_divisor: 16,
            prefer_gf8_final: true,
        }
    }

    /// The Tornado B profile: slower decoding, slightly smaller reception
    /// overhead.
    ///
    /// The paper describes Tornado B only as "a slightly different code
    /// structure that is slower to decode but yields a smaller average
    /// reception overhead".  Our calibrated realisation keeps Tornado A's
    /// peeling graphs but devotes a substantially larger share of the encoding
    /// to the MDS tail (`max(1000, k/6)` packets), which both lowers the
    /// overhead (the MDS block needs no overhead at all) and makes decoding
    /// slower: more of the reconstruction runs through the quadratic-time
    /// Reed–Solomon block instead of the linear-time XOR peeling.
    pub const fn tornado_b() -> Self {
        TornadoProfile {
            name: "tornado-b",
            distribution: DegreeDistribution::heavy_tail(8),
            check_side: CheckSide::Regular,
            stretch_factor: 2.0,
            final_level_threshold: 1000,
            final_level_divisor: 6,
            prefer_gf8_final: false,
        }
    }

    /// The Raptor precode profile: a low-stretch cascade whose redundancy
    /// sits almost entirely in the final MDS block.
    ///
    /// The rateless Raptor construction (`df_core::rateless::RaptorCode`)
    /// LT-encodes over this cascade's full encoding.  The precode's only job
    /// is to repair the intermediate symbols the LT layer leaves unrecovered,
    /// so what matters is *reception* overhead, not decode speed: with the
    /// enormous threshold below the cascade usually has no XOR levels at all
    /// for bench-scale `k` and degenerates to `k` source packets plus an MDS
    /// tail — which any `k` distinct intermediates complete, i.e. a
    /// zero-overhead precode.  For `k` beyond the threshold the normal
    /// cascade construction resumes and keeps the final block inside
    /// GF(2^16).
    pub const fn raptor_precode() -> Self {
        TornadoProfile {
            name: "raptor-pre",
            distribution: DegreeDistribution::heavy_tail(8),
            check_side: CheckSide::Regular,
            stretch_factor: 1.05,
            final_level_threshold: 60_000,
            final_level_divisor: 16,
            prefer_gf8_final: false,
        }
    }

    /// Look a built-in profile up by its wire name (`"tornado-a"`,
    /// `"tornado-b"`, `"raptor-pre"`).
    ///
    /// Returns `None` for unknown names; protocol layers should surface that
    /// as a malformed-input error rather than silently substituting a default
    /// (a client decoding with the wrong profile would reconstruct garbage).
    pub fn by_name(name: &str) -> Option<TornadoProfile> {
        match name {
            "tornado-a" => Some(TORNADO_A),
            "tornado-b" => Some(TORNADO_B),
            "raptor-pre" => Some(RAPTOR_PRECODE),
            _ => None,
        }
    }

    /// Effective final-level threshold for a given `k`.
    pub fn final_threshold_for(&self, k: usize) -> usize {
        self.final_level_threshold
            .max(k / self.final_level_divisor.max(1))
    }

    /// Average XOR cost per message packet implied by the profile's degree
    /// distribution — the `ln(1/ε)` factor of Table 1.
    pub fn average_degree(&self) -> f64 {
        self.distribution.mean()
    }
}

impl Default for TornadoProfile {
    fn default() -> Self {
        TornadoProfile::tornado_a()
    }
}

/// The Tornado A profile (see [`TornadoProfile::tornado_a`]).
pub const TORNADO_A: TornadoProfile = TornadoProfile::tornado_a();

/// The Tornado B profile (see [`TornadoProfile::tornado_b`]).
pub const TORNADO_B: TornadoProfile = TornadoProfile::tornado_b();

/// The Raptor precode profile (see [`TornadoProfile::raptor_precode`]).
pub const RAPTOR_PRECODE: TornadoProfile = TornadoProfile::raptor_precode();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_a_is_default() {
        assert_eq!(TornadoProfile::default(), TORNADO_A);
    }

    #[test]
    fn b_spends_more_on_the_mds_tail_than_a() {
        // Tornado B's slower decode comes from pushing a larger share of the
        // encoding through the quadratic-time final block.
        for k in [2_000usize, 8_264, 16_384] {
            assert!(
                TORNADO_B.final_threshold_for(k) > TORNADO_A.final_threshold_for(k),
                "k = {k}"
            );
        }
    }

    #[test]
    fn final_threshold_scales_with_k() {
        let p = TORNADO_A;
        assert_eq!(p.final_threshold_for(1000), p.final_level_threshold);
        assert_eq!(p.final_threshold_for(64_000), 4000);
    }

    #[test]
    fn lookup_by_name_is_fallible() {
        assert_eq!(TornadoProfile::by_name("tornado-a"), Some(TORNADO_A));
        assert_eq!(TornadoProfile::by_name("tornado-b"), Some(TORNADO_B));
        assert_eq!(TornadoProfile::by_name("tornado-c"), None);
        assert_eq!(TornadoProfile::by_name(""), None);
        assert_eq!(TornadoProfile::by_name("TORNADO-A"), None);
    }

    #[test]
    fn stretch_factor_is_two_as_in_the_paper() {
        assert_eq!(TORNADO_A.stretch_factor, 2.0);
        assert_eq!(TORNADO_B.stretch_factor, 2.0);
    }
}
