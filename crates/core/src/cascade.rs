//! The cascade structure of a Tornado code: a series of random bipartite
//! graphs whose last level is protected by a conventional (Cauchy
//! Reed–Solomon) erasure code, exactly as sketched in Figure 1 of the paper.
//!
//! With stretch factor `c` and `β = (c − 1)/c`, level 0 holds the `k` source
//! packets, level `i+1` holds `⌈β · |level i|⌉` check packets (each the XOR of
//! its neighbours in level `i`), and the cascade stops once a level is small
//! enough that a quadratic-time MDS code over it is cheap; the remaining
//! redundancy budget becomes that code's check packets.  The total number of
//! encoding packets is exactly `n = ⌈c · k⌉`.
//!
//! The whole structure is derived deterministically from
//! `(k, profile, seed)`, so a sender only has to communicate those scalars for
//! a receiver to rebuild the same graphs — this is how "the source and the
//! clients have agreed to the graph structure in advance" (Section 5.1).

use crate::error::{Result, TornadoError};
use crate::graph::BipartiteGraph;
use crate::profile::TornadoProfile;
use df_gf::GF65536;
use df_rs::{CauchyCode, ErasureCode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Identifies where a global encoding-packet index lives in the cascade.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketRole {
    /// A packet of cascade level `level` (0 = source data), at position
    /// `pos` within that level.
    Level {
        /// Cascade level index.
        level: usize,
        /// Position within the level.
        pos: usize,
    },
    /// A check packet of the final Reed–Solomon code, at position `pos`
    /// among the RS check packets.
    RsCheck {
        /// Position among the RS check packets.
        pos: usize,
    },
}

/// Largest final-code block (last level + its checks) that still fits in
/// GF(2^8) — the field order, since the Cauchy construction needs `n`
/// distinct field points.
const GF8_FINAL_MAX: usize = 256;

/// The final conventional code protecting the last cascade level.
///
/// Small codes (≤ 256 packets) use GF(2^8); larger ones GF(2^16).  GF(2^16)
/// works on 16-bit elements, so for odd packet lengths the `Large` variant
/// transparently pads: level packets get one zero byte during encode/decode,
/// and each transmitted check packet carries one extra padding byte plus a
/// trailing zero marker byte (making check packets two bytes longer, and —
/// crucially — of *odd* total length, so a decoder holding only check packets
/// can still reconstruct the original packet length unambiguously: even-length
/// checks mean an even-length block, odd-length checks mean `len + 2`).
#[derive(Debug, Clone)]
pub enum FinalCode {
    /// GF(2^8) Cauchy code, used when the final block fits in 256 packets.
    Small(CauchyCode),
    /// GF(2^16) Cauchy code for larger final blocks.  Odd packet lengths are
    /// handled by the padding scheme described on the type.
    Large(CauchyCode<GF65536>),
}

impl FinalCode {
    pub(crate) fn build(k: usize, n: usize) -> Result<Self> {
        if n <= 256 {
            Ok(FinalCode::Small(CauchyCode::new(k, n).map_err(|e| {
                TornadoError::FinalLevelCode(e.to_string())
            })?))
        } else if n <= 65_536 {
            Ok(FinalCode::Large(CauchyCode::new_large(k, n).map_err(
                |e| TornadoError::FinalLevelCode(e.to_string()),
            )?))
        } else {
            Err(TornadoError::InvalidParameters {
                reason: format!(
                    "final Reed-Solomon block of {n} packets exceeds GF(2^16) capacity"
                ),
            })
        }
    }

    /// Number of source packets of the final code (= size of the last cascade
    /// level).
    pub fn k(&self) -> usize {
        match self {
            FinalCode::Small(c) => c.k(),
            FinalCode::Large(c) => c.k(),
        }
    }

    /// Total packets of the final code (last level + its check packets).
    pub fn n(&self) -> usize {
        match self {
            FinalCode::Small(c) => c.n(),
            FinalCode::Large(c) => c.n(),
        }
    }

    /// Encode the last cascade level, returning only the check packets.
    ///
    /// The systematic prefix is split off (buffers moved, not copied).  For a
    /// GF(2^16) final code and odd packet lengths, level packets are padded
    /// with one zero byte before encoding and each check packet is returned
    /// with an additional trailing zero marker byte (total length `len + 2`,
    /// odd); see the type-level docs for why.
    pub fn encode_checks(&self, level: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        let len = level.first().map(|p| p.len()).unwrap_or(0);
        let mut full = match self {
            FinalCode::Small(c) => c.encode(level)?,
            FinalCode::Large(c) if len.is_multiple_of(2) => c.encode(level)?,
            FinalCode::Large(c) => {
                let padded: Vec<Vec<u8>> = level
                    .iter()
                    .map(|p| {
                        let mut q = Vec::with_capacity(p.len() + 2);
                        q.extend_from_slice(p);
                        q.push(0);
                        q
                    })
                    .collect();
                let mut enc = c.encode(&padded)?;
                for check in &mut enc[self.k()..] {
                    check.push(0);
                }
                enc
            }
        };
        Ok(full.split_off(self.k()))
    }

    /// Recover the full last level from any `k` of its `n` packets.
    ///
    /// `received` uses indices local to the final block: `0..k` are last-level
    /// packets, `k..n` are its check packets.
    pub fn decode(&self, received: &[(usize, Vec<u8>)]) -> Result<Vec<Vec<u8>>> {
        let refs: Vec<(usize, &[u8])> = received
            .iter()
            .map(|(idx, payload)| (*idx, payload.as_slice()))
            .collect();
        self.decode_ref(&refs)
    }

    /// Borrowing variant of [`FinalCode::decode`]: payloads are copied at most
    /// once, into their decoded positions.
    ///
    /// Handles the odd-length padding scheme of [`FinalCode::encode_checks`]
    /// transparently: level packets are re-padded, check packets have their
    /// marker byte stripped, and the decoded level is truncated back to the
    /// original packet length.
    pub fn decode_ref(&self, received: &[(usize, &[u8])]) -> Result<Vec<Vec<u8>>> {
        let c = match self {
            FinalCode::Small(c) => return Ok(c.decode_ref(received)?),
            FinalCode::Large(c) => c,
        };
        // Reconstruct the level-packet length: directly from any level packet
        // (local index < k), else from a check packet — whose length is `len`
        // for even-length blocks and `len + 2` (odd) for padded odd-length
        // blocks, so the parity of the check length disambiguates.
        let k = c.k();
        let len = match (received.iter().find(|&&(idx, _)| idx < k), received.first()) {
            (Some(&(_, p)), _) => Some(p.len()),
            (None, Some(&(idx, p))) if p.len() % 2 == 1 => {
                // An odd check length means `level_len + 2`; anything shorter
                // than the marker scheme allows is a corrupt packet, not a
                // decodable block.
                let Some(l) = p.len().checked_sub(2) else {
                    return Err(TornadoError::MalformedInput {
                        reason: format!(
                            "final-block check packet {idx} has length {}, \
                             too short for the odd-length marker scheme",
                            p.len()
                        ),
                    });
                };
                Some(l)
            }
            (None, Some(&(_, p))) => Some(p.len()),
            (None, None) => None,
        };
        let Some(len) = len else {
            // No packets at all: let the inner decoder report NotEnoughPackets.
            return Ok(c.decode_ref(received)?);
        };
        if len % 2 == 0 {
            return Ok(c.decode_ref(received)?);
        }
        // Odd-length block: normalize everything to `len + 1`, decode, strip.
        let padded_len = len + 1;
        for &(idx, p) in received {
            let expect = if idx < k { len } else { len + 2 };
            if p.len() != expect {
                return Err(TornadoError::MalformedInput {
                    reason: format!(
                        "final-block packet {idx} has length {}, expected {expect}",
                        p.len()
                    ),
                });
            }
        }
        let padded_levels: Vec<Vec<u8>> = received
            .iter()
            .filter(|&&(idx, _)| idx < k)
            .map(|&(_, p)| {
                let mut q = Vec::with_capacity(padded_len);
                q.extend_from_slice(p);
                q.push(0);
                q
            })
            .collect();
        let mut level_i = 0;
        let refs: Vec<(usize, &[u8])> = received
            .iter()
            .map(|&(idx, p)| {
                if idx < k {
                    let r = (idx, padded_levels[level_i].as_slice());
                    level_i += 1;
                    r
                } else {
                    (idx, &p[..padded_len])
                }
            })
            .collect();
        let mut out = c.decode_ref(&refs)?;
        for p in &mut out {
            p.truncate(len);
        }
        Ok(out)
    }
}

/// The full cascade: level sizes, bipartite graphs and the final code.
#[derive(Debug, Clone)]
pub struct Cascade {
    k: usize,
    n: usize,
    profile: TornadoProfile,
    seed: u64,
    /// Sizes of levels 0..=m (level 0 is the source data).
    level_sizes: Vec<usize>,
    /// Global index of the first packet of each level.
    level_offsets: Vec<usize>,
    /// `graphs[i]` connects level `i` (left) to level `i + 1` (right).
    graphs: Vec<BipartiteGraph>,
    /// Final code over the last level.
    final_code: FinalCode,
    /// Global index of the first final-code check packet.
    rs_offset: usize,
}

impl Cascade {
    /// Build the cascade for `k` source packets under `profile`, seeding all
    /// graph randomness from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`TornadoError::InvalidParameters`] if `k == 0`, the stretch
    /// factor is not greater than 1, or the final block would not fit in
    /// GF(2^16).
    pub fn build(k: usize, profile: TornadoProfile, seed: u64) -> Result<Self> {
        if k == 0 {
            return Err(TornadoError::InvalidParameters {
                reason: "k must be positive".to_string(),
            });
        }
        if profile.stretch_factor <= 1.0 {
            return Err(TornadoError::InvalidParameters {
                reason: format!(
                    "stretch factor must exceed 1, got {}",
                    profile.stretch_factor
                ),
            });
        }
        let n = (k as f64 * profile.stretch_factor).round() as usize;
        let redundancy = n - k;
        if redundancy == 0 {
            return Err(TornadoError::InvalidParameters {
                reason: "stretch factor leaves no room for redundancy".to_string(),
            });
        }
        let beta = (profile.stretch_factor - 1.0) / profile.stretch_factor;
        let threshold = profile.final_threshold_for(k);

        // Choose level sizes.  We keep adding cascade levels while the current
        // level is still above the threshold and enough redundancy budget
        // remains for the final code to have at least as many check packets as
        // would keep its rate at or below the cascade's.
        //
        // When the profile prefers a GF(2^8) final code, cascading continues
        // past the threshold until the final block (last level plus the
        // remaining check budget) fits in 256 packets, the largest code
        // GF(2^8) can address.  The budget guard (`remaining > next`) still
        // applies, so a profile whose threshold demands a large final block —
        // or a stretch factor that leaves no room for further levels — falls
        // back to GF(2^16) rather than starving the final code.
        let mut level_sizes = vec![k];
        let mut remaining = redundancy;
        loop {
            let cur = *level_sizes.last().expect("at least the source level");
            let want_more =
                cur > threshold || (profile.prefer_gf8_final && cur + remaining > GF8_FINAL_MAX);
            if !want_more {
                break;
            }
            let next = ((cur as f64) * beta).ceil() as usize;
            if next == 0 || remaining <= next {
                break;
            }
            level_sizes.push(next);
            remaining -= next;
        }
        let last = *level_sizes.last().expect("at least the source level");
        let rs_checks = remaining;
        let final_code = FinalCode::build(last, last + rs_checks)?;

        // Offsets: levels first, then RS checks.
        let mut level_offsets = Vec::with_capacity(level_sizes.len());
        let mut acc = 0;
        for &s in &level_sizes {
            level_offsets.push(acc);
            acc += s;
        }
        let rs_offset = acc;
        debug_assert_eq!(rs_offset + rs_checks, n);

        // Graphs, one per adjacent pair of levels, all derived from the seed.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut graphs = Vec::with_capacity(level_sizes.len().saturating_sub(1));
        for w in level_sizes.windows(2) {
            graphs.push(BipartiteGraph::random(
                w[0],
                w[1],
                &profile.distribution,
                profile.check_side,
                &mut rng,
            ));
        }

        Ok(Cascade {
            k,
            n,
            profile,
            seed,
            level_sizes,
            level_offsets,
            graphs,
            final_code,
            rs_offset,
        })
    }

    /// Number of source packets.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of encoding packets.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The profile the cascade was built from.
    pub fn profile(&self) -> &TornadoProfile {
        &self.profile
    }

    /// The seed the graphs were derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sizes of the cascade levels (level 0 = source data).
    pub fn level_sizes(&self) -> &[usize] {
        &self.level_sizes
    }

    /// The bipartite graphs; `graphs()[i]` connects level `i` to level `i+1`.
    pub fn graphs(&self) -> &[BipartiteGraph] {
        &self.graphs
    }

    /// The final conventional code.
    pub fn final_code(&self) -> &FinalCode {
        &self.final_code
    }

    /// Number of check packets produced by the final code.
    pub fn rs_checks(&self) -> usize {
        self.n - self.rs_offset
    }

    /// Global index of the first final-code check packet.
    pub fn rs_offset(&self) -> usize {
        self.rs_offset
    }

    /// Global index of the first packet of `level`.
    pub fn level_offset(&self, level: usize) -> usize {
        self.level_offsets[level]
    }

    /// Number of cascade levels, including the source level.
    pub fn num_levels(&self) -> usize {
        self.level_sizes.len()
    }

    /// Classify a global encoding-packet index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n`.
    pub fn role(&self, index: usize) -> PacketRole {
        assert!(index < self.n, "packet index {index} out of range");
        if index >= self.rs_offset {
            return PacketRole::RsCheck {
                pos: index - self.rs_offset,
            };
        }
        // Levels are contiguous; binary search over offsets.
        let level = match self.level_offsets.binary_search(&index) {
            Ok(l) => l,
            Err(ins) => ins - 1,
        };
        PacketRole::Level {
            level,
            pos: index - self.level_offsets[level],
        }
    }

    /// Global index of the packet at `pos` within `level`.
    pub fn global_index(&self, level: usize, pos: usize) -> usize {
        debug_assert!(pos < self.level_sizes[level]);
        self.level_offsets[level] + pos
    }

    /// Global index of final-code check packet `pos`.
    pub fn rs_check_index(&self, pos: usize) -> usize {
        debug_assert!(pos < self.rs_checks());
        self.rs_offset + pos
    }

    /// Average number of XOR operations per source packet implied by the
    /// cascade graphs — the quantity behind the `(k + ℓ) ln(1/ε) P` running
    /// time in Table 1.
    pub fn average_xor_cost(&self) -> f64 {
        let total_edges: usize = self.graphs.iter().map(|g| g.edges()).sum();
        total_edges as f64 / self.k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{TORNADO_A, TORNADO_B};
    use proptest::prelude::*;

    #[test]
    fn total_packet_count_is_exactly_stretch_times_k() {
        for k in [100usize, 250, 1000, 2000, 8264, 16_384] {
            let c = Cascade::build(k, TORNADO_A, 1).unwrap();
            assert_eq!(c.n(), 2 * k, "k = {k}");
            let sum: usize = c.level_sizes().iter().sum::<usize>() + c.rs_checks();
            assert_eq!(sum, c.n());
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "large-k statistical sweep; intractable under the Miri interpreter"
    )]
    fn level_sizes_shrink_geometrically() {
        let c = Cascade::build(10_000, TORNADO_A, 2).unwrap();
        let sizes = c.level_sizes();
        assert!(
            sizes.len() >= 3,
            "a 10k-packet file should cascade, got {sizes:?}"
        );
        for w in sizes.windows(2) {
            let ratio = w[1] as f64 / w[0] as f64;
            assert!((ratio - 0.5).abs() < 0.01, "levels {w:?} not halving");
        }
    }

    #[test]
    fn small_files_degenerate_to_pure_rs() {
        let c = Cascade::build(50, TORNADO_A, 3).unwrap();
        assert_eq!(c.num_levels(), 1);
        assert_eq!(c.graphs().len(), 0);
        assert_eq!(c.final_code().k(), 50);
        assert_eq!(c.final_code().n(), 100);
    }

    #[test]
    fn roles_partition_the_index_space() {
        let c = Cascade::build(3000, TORNADO_A, 4).unwrap();
        let mut level_counts = vec![0usize; c.num_levels()];
        let mut rs_count = 0usize;
        for i in 0..c.n() {
            match c.role(i) {
                PacketRole::Level { level, pos } => {
                    assert!(pos < c.level_sizes()[level]);
                    assert_eq!(c.global_index(level, pos), i);
                    level_counts[level] += 1;
                }
                PacketRole::RsCheck { pos } => {
                    assert_eq!(c.rs_check_index(pos), i);
                    rs_count += 1;
                }
            }
        }
        assert_eq!(level_counts, c.level_sizes());
        assert_eq!(rs_count, c.rs_checks());
    }

    #[test]
    fn graphs_match_level_sizes() {
        let c = Cascade::build(5000, TORNADO_B, 5).unwrap();
        assert_eq!(c.graphs().len(), c.num_levels() - 1);
        for (i, g) in c.graphs().iter().enumerate() {
            assert_eq!(g.left(), c.level_sizes()[i]);
            assert_eq!(g.right(), c.level_sizes()[i + 1]);
        }
    }

    #[test]
    fn deterministic_in_seed_and_profile() {
        let a = Cascade::build(2000, TORNADO_A, 77).unwrap();
        let b = Cascade::build(2000, TORNADO_A, 77).unwrap();
        assert_eq!(a.level_sizes(), b.level_sizes());
        assert_eq!(a.graphs(), b.graphs());
        let c = Cascade::build(2000, TORNADO_A, 78).unwrap();
        assert_ne!(a.graphs(), c.graphs());
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Cascade::build(0, TORNADO_A, 0).is_err());
        let mut p = TORNADO_A;
        p.stretch_factor = 1.0;
        assert!(Cascade::build(100, p, 0).is_err());
        p.stretch_factor = 0.5;
        assert!(Cascade::build(100, p, 0).is_err());
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "large-k statistical sweep; intractable under the Miri interpreter"
    )]
    fn final_block_stays_comfortably_decodable() {
        // The final code must keep at least as many checks as a rate-1/2 code
        // would need, otherwise the top of the cascade becomes the overhead
        // bottleneck.
        for k in [1000usize, 4000, 16_384, 65_536] {
            let c = Cascade::build(k, TORNADO_A, 9).unwrap();
            let fk = c.final_code().k() as f64;
            let checks = c.rs_checks() as f64;
            assert!(
                checks >= 0.8 * fk,
                "k = {k}: final level {fk} packets but only {checks} checks"
            );
        }
    }

    #[test]
    fn truncated_odd_check_packet_errors_instead_of_panicking() {
        // A 1-byte check packet is shorter than the odd-length marker scheme
        // allows; length inference must reject it as malformed, not underflow.
        let c = Cascade::build(2000, TORNADO_B, 5).unwrap();
        assert!(c.final_code().n() > 256, "premise: GF(2^16) final");
        let k = c.final_code().k();
        let result = c.final_code().decode_ref(&[(k, &[0u8][..])]);
        assert!(matches!(result, Err(TornadoError::MalformedInput { .. })));
    }

    #[test]
    fn rs_check_count_positive() {
        for k in [1usize, 2, 3, 10, 999] {
            let c = Cascade::build(k, TORNADO_A, 11).unwrap();
            assert!(c.rs_checks() > 0, "k = {k} produced no redundancy");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn prop_cascade_accounting(k in 1usize..20_000, seed in any::<u64>()) {
            let c = Cascade::build(k, TORNADO_A, seed).unwrap();
            prop_assert_eq!(c.k(), k);
            prop_assert_eq!(c.n(), 2 * k);
            let sum: usize = c.level_sizes().iter().sum::<usize>() + c.rs_checks();
            prop_assert_eq!(sum, c.n());
            prop_assert_eq!(c.final_code().k(), *c.level_sizes().last().unwrap());
            prop_assert_eq!(c.final_code().n(), c.final_code().k() + c.rs_checks());
        }
    }
}
