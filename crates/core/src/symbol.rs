//! The [`Symbol`] abstraction that lets one peeling implementation serve both
//! the real payload decoder and the index-only ("symbolic") decoder used by
//! the large-scale simulations.
//!
//! The decoding *decisions* of a Tornado code depend only on which packets
//! are present, never on their contents.  Decoding with `Symbol = Vec<u8>`
//! performs the actual XORs; decoding with the zero-sized [`Mark`] symbol
//! performs the identical peeling schedule while moving no data, which is what
//! makes simulating tens of thousands of receivers (Figures 4–6) tractable.
//! Because both decoders are the same generic code, their agreement is
//! structural rather than something that has to be maintained by hand — and it
//! is additionally checked by property tests in `decode.rs`.

use crate::cascade::FinalCode;
use crate::error::Result;
use df_gf::field::xor_slice;

/// A value carried by one encoding packet during decoding.
pub trait Symbol: Clone + Sized {
    /// XOR `other` into `self`.
    fn xor(&mut self, other: &Self);

    /// Attempt to recover the full final cascade level from the packets of the
    /// final block received so far.
    ///
    /// `received` holds `(local index, value)` pairs — values are *borrowed*
    /// from the decoder's packet store, so payload symbols are never cloned
    /// just to attempt recovery.  Local indices `0..k` are last-level packets
    /// and `k..n` are the final code's check packets.  Returns `Ok(None)` when
    /// not enough packets are present.
    ///
    /// # Errors
    ///
    /// Propagates payload-level decoding errors (e.g. odd packet lengths fed
    /// to a GF(2^16) final code).
    fn recover_final_level(
        code: &FinalCode,
        received: &[(usize, &Self)],
    ) -> Result<Option<Vec<Self>>>;
}

impl Symbol for Vec<u8> {
    fn xor(&mut self, other: &Self) {
        xor_slice(self, other);
    }

    fn recover_final_level(
        code: &FinalCode,
        received: &[(usize, &Self)],
    ) -> Result<Option<Vec<Self>>> {
        if received.len() < code.k() {
            return Ok(None);
        }
        let refs: Vec<(usize, &[u8])> = received
            .iter()
            .map(|&(idx, payload)| (idx, payload.as_slice()))
            .collect();
        Ok(Some(code.decode_ref(&refs)?))
    }
}

/// The zero-sized symbol used by the symbolic decoder: it records *that* a
/// packet is known, not what it contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mark;

impl Symbol for Mark {
    fn xor(&mut self, _other: &Self) {}

    fn recover_final_level(
        code: &FinalCode,
        received: &[(usize, &Self)],
    ) -> Result<Option<Vec<Self>>> {
        // The final code is MDS: any k of its n packets recover the level.
        if received.len() >= code.k() {
            Ok(Some(vec![Mark; code.k()]))
        } else {
            Ok(None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_xor_is_bytewise() {
        let mut a = vec![0xf0u8, 0x0f];
        a.xor(&vec![0xffu8, 0xff]);
        assert_eq!(a, vec![0x0f, 0xf0]);
    }

    #[test]
    fn mark_final_level_threshold() {
        let code = FinalCode::build(10, 20).unwrap();
        let not_enough: Vec<(usize, &Mark)> = (0..9).map(|i| (i, &Mark)).collect();
        assert_eq!(Mark::recover_final_level(&code, &not_enough).unwrap(), None);
        let enough: Vec<(usize, &Mark)> = (5..15).map(|i| (i, &Mark)).collect();
        assert_eq!(
            Mark::recover_final_level(&code, &enough).unwrap(),
            Some(vec![Mark; 10])
        );
    }

    #[test]
    fn payload_final_level_decodes_real_data() {
        let code = FinalCode::build(4, 8).unwrap();
        let level: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 6]).collect();
        let checks = code.encode_checks(&level).unwrap();
        // Receive two level packets and two checks, by reference.
        let received = vec![
            (0usize, &level[0]),
            (3, &level[3]),
            (4, &checks[0]),
            (6, &checks[2]),
        ];
        let out = Vec::<u8>::recover_final_level(&code, &received)
            .unwrap()
            .unwrap();
        assert_eq!(out, level);
        // With only three packets it must hold off.
        assert_eq!(
            Vec::<u8>::recover_final_level(&code, &received[..3]).unwrap(),
            None
        );
    }
}
