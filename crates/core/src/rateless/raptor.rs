//! The Raptor construction: a Tornado-cascade precode under an LT layer.
//!
//! A plain LT code pays its worst reception overhead at the *end* of
//! decoding — the last few source symbols are only reachable through the
//! high-degree spike of the robust soliton, and their wait is what pushes
//! k = 1000 decodes past `1.1·k` received symbols.  Raptor's fix (Shokrollahi
//! 2006) is to stop demanding full LT recovery: first *precode* the `k`
//! source packets into `L` intermediate packets with a fixed-rate erasure
//! code, then LT-encode over the `L` intermediates.  The LT layer only has
//! to recover *most* intermediates; the precode's redundancy repairs the
//! stragglers, exactly the regime where LT decoding is cheap.
//!
//! We reuse the existing machinery for both layers:
//!
//! * the precode is a [`Cascade`] built with the [`RAPTOR_PRECODE`] profile —
//!   a low-stretch Tornado construction whose redundancy sits almost
//!   entirely in the final MDS block, so *any* `≈ k` distinct intermediates
//!   finish it (near-zero precode reception overhead);
//! * LT recovery feeds straight into the ordinary [`PeelingDecoder`], whose
//!   completion check *is* the Raptor completion check.
//!
//! The LT layer does not use the robust soliton at all: it samples
//! [`RAPTOR_DEGREE_TABLE`], a fixed constant-mean-degree distribution from
//! the Raptor paper designed for *partial* recovery under peeling.  With the
//! precode absorbing the stragglers there is no need for the soliton's
//! spike — and dropping it is where the overhead win over plain LT comes
//! from.

use crate::cascade::{Cascade, FinalCode, PacketRole};
use crate::codec::TornadoCode;
use crate::decode::{AddOutcome, PeelingDecoder};
use crate::error::Result;
use crate::profile::{TornadoProfile, RAPTOR_PRECODE};
use crate::rateless::lt::{LtDecoder, LtEncoder};
use crate::rateless::soliton::DegreeTable;
use crate::symbol::{Mark, Symbol};
use std::sync::Arc;

/// The Raptor LT layer's degree distribution: Shokrollahi's output
/// distribution for ε ≈ 0.038 ("Raptor Codes", IEEE Trans. IT 2006,
/// Table I).
///
/// Unlike the robust soliton, this table has constant mean degree (≈ 5.87)
/// and no spike: it is *designed* to recover a `1 − O(ε)` fraction of the
/// intermediates smoothly under peeling, rather than everything in a late
/// avalanche, because the precode repairs the stragglers.  This is exactly
/// why Raptor beats plain LT at moderate `k` — the robust soliton's spike
/// and its fat transition tail are the price of demanding *full* recovery
/// from the LT layer alone.
pub const RAPTOR_DEGREE_TABLE: &[(usize, f64)] = &[
    (1, 0.007969),
    (2, 0.493570),
    (3, 0.166220),
    (4, 0.072646),
    (5, 0.082558),
    (8, 0.056058),
    (9, 0.037229),
    (19, 0.055590),
    (65, 0.025023),
    (66, 0.003135),
];

/// Build the [`DegreeTable`] for [`RAPTOR_DEGREE_TABLE`].
///
/// The table constants are static and valid, so this cannot fail at runtime;
/// it still returns `Result` to keep the (single) construction site honest.
fn raptor_degree_table() -> Result<DegreeTable> {
    DegreeTable::new(RAPTOR_DEGREE_TABLE)
}

/// A Raptor code: Tornado precode + LT layer over the intermediates.
#[derive(Debug, Clone)]
pub struct RaptorCode {
    precode: TornadoCode,
    lt: LtEncoder,
}

impl RaptorCode {
    /// Build a Raptor code over `k` source packets with the default
    /// [`RAPTOR_PRECODE`] profile and calibrated LT parameters.
    ///
    /// # Errors
    ///
    /// Propagates cascade-construction errors (e.g. `k == 0`).
    pub fn new(k: usize, seed: u64) -> Result<Self> {
        RaptorCode::with_profile(k, RAPTOR_PRECODE, seed)
    }

    /// Build a Raptor code with an explicit precode profile (LT layer uses
    /// [`RAPTOR_DEGREE_TABLE`]).
    pub fn with_profile(k: usize, profile: TornadoProfile, seed: u64) -> Result<Self> {
        let precode = TornadoCode::with_profile(k, profile, seed)?;
        let lt = LtEncoder::with_table(precode.n(), raptor_degree_table()?, seed)?;
        Ok(RaptorCode { precode, lt })
    }

    /// Build a Raptor code with an explicit precode profile and a
    /// robust-soliton LT layer instead of the fixed table — the calibration
    /// entry point (see `examples/lt_stats.rs`) used to measure why the
    /// fixed table wins; protocol sessions use [`RaptorCode::new`].
    pub fn with_profile_and_soliton(
        k: usize,
        profile: TornadoProfile,
        c: f64,
        delta: f64,
        seed: u64,
    ) -> Result<Self> {
        let precode = TornadoCode::with_profile(k, profile, seed)?;
        let lt = LtEncoder::new(precode.n(), c, delta, seed)?;
        Ok(RaptorCode { precode, lt })
    }

    /// Number of source packets `k`.
    pub fn k(&self) -> usize {
        self.precode.k()
    }

    /// Number of intermediate symbols `L` the LT layer ranges over
    /// (= the precode's full encoding length `n`).
    pub fn intermediate_count(&self) -> usize {
        self.precode.n()
    }

    /// The precode.
    pub fn precode(&self) -> &TornadoCode {
        &self.precode
    }

    /// The LT layer's encoder (shared seed → equation derivation).
    pub fn lt(&self) -> &LtEncoder {
        &self.lt
    }

    /// Uniform length of every LT symbol when the source was split into
    /// `packet_size`-byte packets: intermediate packets are padded up to the
    /// longest precode packet (GF(2^16) final-code checks carry two extra
    /// bytes when `packet_size` is odd, see [`FinalCode`]).
    pub fn symbol_len(&self, packet_size: usize) -> usize {
        let n = self.precode.n();
        // The final RS checks are the longest packets in the encoding.
        self.precode.expected_payload_len(n - 1, packet_size)
    }

    /// Run the precode: encode `source` into the `L` intermediate symbols,
    /// zero-padded to one uniform length so the LT layer can XOR them.
    ///
    /// # Errors
    ///
    /// Propagates precode encoding errors (wrong packet count / lengths).
    pub fn precode_symbols(&self, source: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        let mut enc = self.precode.encode(source)?;
        let uniform = enc.iter().map(|p| p.len()).max().unwrap_or(0);
        for p in &mut enc {
            p.resize(uniform, 0);
        }
        Ok(enc)
    }

    /// Encode one LT symbol over precomputed intermediates (from
    /// [`RaptorCode::precode_symbols`]).
    ///
    /// # Errors
    ///
    /// Returns [`crate::TornadoError::MalformedInput`] if `intermediates`
    /// does not hold exactly `L` symbols.
    pub fn encode_symbol(&self, seed: u64, intermediates: &[Vec<u8>]) -> Result<Vec<u8>> {
        self.lt.encode_symbol(seed, intermediates)
    }

    /// Streaming payload decoder.
    pub fn decoder(&self) -> RaptorDecoder<Vec<u8>> {
        RaptorDecoder::new(self)
    }

    /// Streaming index-only decoder for overhead simulations.
    pub fn symbolic_decoder(&self) -> RaptorDecoder<Mark> {
        RaptorDecoder::new(self)
    }
}

/// Streaming Raptor decoder: LT-peels intermediates, feeds each recovered
/// intermediate into the precode's [`PeelingDecoder`], and completes when the
/// precode does — typically well before the LT layer recovers everything.
#[derive(Debug, Clone)]
pub struct RaptorDecoder<S: Symbol> {
    lt: LtDecoder<S>,
    inner: PeelingDecoder<S, Arc<Cascade>>,
}

impl<S: Symbol> RaptorDecoder<S> {
    fn new(code: &RaptorCode) -> Self {
        let mut lt = LtDecoder::new(code.lt().clone());
        // Raptor decoding is elimination-led: the fixed degree table leaves
        // a few intermediates uncovered (the precode repairs those), so the
        // finisher must not wait for a peeling avalanche that never comes.
        lt.engage_finisher_eagerly();
        RaptorDecoder {
            lt,
            inner: PeelingDecoder::new(code.precode().shared_cascade()),
        }
    }

    /// True once the precode has recovered every source packet.
    pub fn is_complete(&self) -> bool {
        self.inner.is_complete()
    }

    /// The recovered source packets, once complete.
    pub fn source(&self) -> Option<Vec<S>> {
        self.inner.source()
    }

    /// LT symbols accepted, including duplicates.
    pub fn received_total(&self) -> u64 {
        self.lt.received_total()
    }

    /// LT symbols accepted whose seed was new (see
    /// [`LtDecoder::received_distinct`]).
    pub fn received_distinct(&self) -> u64 {
        self.lt.received_distinct()
    }

    /// Intermediates recovered by the LT layer so far.
    pub fn lt_known(&self) -> usize {
        self.lt.known()
    }

    /// Equations buffered by the LT layer.
    pub fn pending_equations(&self) -> usize {
        self.lt.pending_equations()
    }

    /// Unknown-neighbor references across buffered equations (the memory
    /// bound the protocol layer enforces).
    pub fn pending_edges(&self) -> usize {
        self.lt.pending_edges()
    }

    /// Accept one `(seed, payload)` LT symbol and propagate recoveries into
    /// the precode.  `fix` normalises a recovered intermediate before it is
    /// fed (payload decoders strip the uniform padding; `Mark` is identity).
    fn add_with<F>(&mut self, seed: u64, value: S, fix: F) -> Result<AddOutcome>
    where
        F: Fn(&Cascade, usize, S) -> S,
    {
        if self.inner.is_complete() {
            return Ok(AddOutcome::Duplicate);
        }
        let lt_outcome = self.lt.add_symbol(seed, value);
        for idx in self.lt.drain_recovered() {
            let Some(sym) = self.lt.symbol(idx as usize) else {
                continue;
            };
            let fixed = fix(self.inner.cascade(), idx as usize, sym.clone());
            // Index is always < n (the LT layer ranges over exactly the
            // precode's encoding); Duplicate just means the precode already
            // peeled this intermediate itself.
            self.inner.add_packet(idx as usize, fixed)?;
            if self.inner.is_complete() {
                return Ok(AddOutcome::Complete);
            }
        }
        Ok(match lt_outcome {
            AddOutcome::Duplicate => AddOutcome::Duplicate,
            _ if self.inner.is_complete() => AddOutcome::Complete,
            _ => AddOutcome::Accepted,
        })
    }
}

impl RaptorDecoder<Vec<u8>> {
    /// Accept one `(seed, payload)` symbol.  All payloads must share the
    /// code's uniform [`RaptorCode::symbol_len`]; the protocol layer
    /// validates this before the symbol reaches the decoder.
    ///
    /// # Errors
    ///
    /// Propagates precode decoder errors (none are expected for in-range
    /// indices, which the LT derivation guarantees).
    pub fn add_symbol(&mut self, seed: u64, payload: Vec<u8>) -> Result<AddOutcome> {
        self.add_with(seed, payload, |cascade, idx, mut v| {
            // Undo the uniform-length padding: with a GF(2^16) final code and
            // odd payloads, cascade-level packets are two bytes shorter than
            // the RS checks the symbols were padded to match.
            if matches!(cascade.final_code(), FinalCode::Large(_))
                && v.len() % 2 == 1
                && matches!(cascade.role(idx), PacketRole::Level { .. })
            {
                v.truncate(v.len().saturating_sub(2));
            }
            v
        })
    }
}

impl RaptorDecoder<Mark> {
    /// Accept one symbol by seed only (index-only simulation).
    ///
    /// # Errors
    ///
    /// Propagates precode decoder errors (none are expected for in-range
    /// indices).
    pub fn add_mark(&mut self, seed: u64) -> Result<AddOutcome> {
        self.add_with(seed, Mark, |_, _, m| m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngCore, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn payloads(count: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let mut p = vec![0u8; len];
                rng.fill_bytes(&mut p);
                p
            })
            .collect()
    }

    #[test]
    fn precode_profile_is_mostly_mds() {
        let code = RaptorCode::new(1000, 7).unwrap();
        let l = code.intermediate_count();
        assert!(l > 1000 && l < 1100, "L = {l}");
    }

    #[test]
    fn round_trips_payloads() {
        let k = 200;
        let src = payloads(k, 32, 21);
        let code = RaptorCode::new(k, 21).unwrap();
        let inter = code.precode_symbols(&src).unwrap();
        assert_eq!(inter.len(), code.intermediate_count());
        let uniform = inter[0].len();
        assert!(inter.iter().all(|p| p.len() == uniform));

        let mut dec = code.decoder();
        let mut seed = 1000u64;
        while !dec.is_complete() {
            let sym = code.encode_symbol(seed, &inter).unwrap();
            assert_eq!(sym.len(), code.symbol_len(32));
            dec.add_symbol(seed, sym).unwrap();
            seed += 1;
            assert!(seed < 1000 + 10 * k as u64, "decode did not converge");
        }
        assert_eq!(dec.source().unwrap(), src);
    }

    #[test]
    fn round_trips_odd_payloads_through_gf16_padding() {
        // Odd packet length + a > 256-packet final block forces the GF(2^16)
        // padding scheme; the Raptor layer must pad and un-pad transparently.
        let k = 400;
        let src = payloads(k, 33, 5);
        let code = RaptorCode::new(k, 5).unwrap();
        assert!(
            matches!(
                code.precode().shared_cascade().final_code(),
                FinalCode::Large(_)
            ),
            "test needs the GF(2^16) final-code path"
        );
        assert_eq!(code.symbol_len(33), 35);
        let inter = code.precode_symbols(&src).unwrap();
        let mut dec = code.decoder();
        let mut seed = 0u64;
        while !dec.is_complete() {
            let sym = code.encode_symbol(seed, &inter).unwrap();
            dec.add_symbol(seed, sym).unwrap();
            seed += 1;
            assert!(seed < 10 * k as u64, "decode did not converge");
        }
        assert_eq!(dec.source().unwrap(), src);
    }

    #[test]
    fn symbolic_and_payload_schedules_agree() {
        let k = 150;
        let src = payloads(k, 8, 9);
        let code = RaptorCode::new(k, 9).unwrap();
        let inter = code.precode_symbols(&src).unwrap();
        let mut payload = code.decoder();
        let mut marks = code.symbolic_decoder();
        let mut seed = 0u64;
        while !payload.is_complete() {
            let sym = code.encode_symbol(seed, &inter).unwrap();
            payload.add_symbol(seed, sym).unwrap();
            marks.add_mark(seed).unwrap();
            assert_eq!(payload.is_complete(), marks.is_complete());
            assert_eq!(payload.lt_known(), marks.lt_known());
            seed += 1;
            assert!(seed < 10 * k as u64, "decode did not converge");
        }
        assert_eq!(payload.source().unwrap(), src);
    }

    #[test]
    fn completes_before_full_lt_recovery() {
        // The precode's point: completion must not require the LT layer to
        // recover every intermediate.  Make that structural: drop every
        // symbol whose equation touches the last intermediate, so the LT
        // layer can never recover it — not by peeling and not by
        // elimination (no equation covers it, so its column is always
        // rank-deficient) — and the decoder must still finish through the
        // precode's redundancy.
        let k = 500;
        let code = RaptorCode::new(k, 3).unwrap();
        let straggler = (code.intermediate_count() - 1) as u32;
        let mut dec = code.symbolic_decoder();
        let mut seed = 0u64;
        while !dec.is_complete() {
            if !code.lt().equation(seed).neighbors.contains(&straggler) {
                dec.add_mark(seed).unwrap();
            }
            seed += 1;
            assert!(seed < 20 * k as u64, "decode did not converge");
        }
        assert!(
            dec.lt_known() < code.intermediate_count(),
            "LT recovered all {} intermediates despite the straggler filter",
            code.intermediate_count()
        );
    }
}
