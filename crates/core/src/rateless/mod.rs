//! Rateless ("true digital fountain") codes: LT and Raptor.
//!
//! The carousel (`fountain.rs`) approximates the paper's ideal fountain by
//! re-transmitting a *fixed* Tornado encoding — cheap, but late joiners and
//! slow receivers pay a distinctness-efficiency loss as duplicates
//! accumulate.  This module is the real thing: an unbounded stream of fresh
//! symbols, each fully described by a 64-bit seed, so that *every* received
//! symbol is new no matter when a receiver tunes in.
//!
//! * [`RobustSoliton`] — Luby's ρ+τ degree distribution with inverse-CDF
//!   sampling from a seeded PRNG.
//! * [`LtEncoder`] / [`LtDecoder`] — the seed → (degree, neighbors) contract
//!   and the streaming peeling decoder.
//! * [`RaptorCode`] / [`RaptorDecoder`] — Tornado-precode + LT layer, which
//!   trades a few percent of intermediate-symbol inflation for skipping LT
//!   decoding's expensive tail.
//!
//! `df-proto` carries the seed in the existing 12-byte header
//! (`packet_index:serial` = high:low 32 bits) and advertises the mode on the
//! control channel; see DESIGN.md "Rateless mode".

mod lt;
mod raptor;
mod soliton;

pub use lt::{LtDecoder, LtEncoder, LtEquation, INACTIVATION_CAP};
pub use raptor::{RaptorCode, RaptorDecoder, RAPTOR_DEGREE_TABLE};
pub use soliton::{DegreeTable, RobustSoliton};

/// Default robust-soliton `c` for plain-LT sessions (the classic
/// literature operating point, also the ISSUE/acceptance parameters).
pub const LT_DEFAULT_C: f64 = 0.03;

/// Default robust-soliton `δ` for plain-LT sessions.
pub const LT_DEFAULT_DELTA: f64 = 0.5;

#[cfg(test)]
mod overhead_tests {
    use super::*;
    use crate::symbol::Mark;

    /// Received symbols needed for one plain-LT decode at `k`, seeded.
    fn lt_trial(k: usize, seed: u64) -> f64 {
        let enc = LtEncoder::new(k, LT_DEFAULT_C, LT_DEFAULT_DELTA, seed).expect("valid params");
        let mut dec = LtDecoder::<Mark>::new(enc);
        let mut sent = 0u64;
        while !dec.is_complete() {
            dec.add_symbol(seed.wrapping_mul(1_000_003).wrapping_add(sent), Mark);
            sent += 1;
            assert!(sent < 4 * k as u64 + 1000, "LT decode runaway at k = {k}");
        }
        sent as f64 / k as f64
    }

    /// Received symbols needed for one Raptor decode at `k`, seeded.
    fn raptor_trial(k: usize, seed: u64) -> f64 {
        let code = RaptorCode::new(k, seed).expect("valid params");
        let mut dec = code.symbolic_decoder();
        let mut sent = 0u64;
        while !dec.is_complete() {
            dec.add_mark(seed.wrapping_mul(1_000_003).wrapping_add(sent))
                .expect("in-range index");
            sent += 1;
            assert!(
                sent < 4 * k as u64 + 1000,
                "Raptor decode runaway at k = {k}"
            );
        }
        sent as f64 / k as f64
    }

    /// The PR's acceptance criterion, verbatim: at k = 1000 with the default
    /// (c = 0.03, δ = 0.5) soliton, ≥ 95 of 100 seeded trials finish from at
    /// most 1.15·k received symbols.
    #[test]
    #[cfg_attr(
        miri,
        ignore = "large-k statistical sweep; intractable under the Miri interpreter"
    )]
    fn lt_k1000_decodes_within_15_percent_overhead_in_95_of_100_trials() {
        let trials = 100;
        let within = (0..trials)
            .filter(|&t| lt_trial(1000, 0xACCE_5500 + t as u64) <= 1.15)
            .count();
        assert!(
            within >= 95,
            "only {within}/{trials} trials decoded within 1.15·k"
        );
    }

    /// Raptor must beat plain LT's average overhead at the same k.
    #[test]
    #[cfg_attr(
        miri,
        ignore = "large-k statistical sweep; intractable under the Miri interpreter"
    )]
    fn raptor_beats_plain_lt_overhead_at_k1000() {
        let trials = 40;
        let lt_avg: f64 = (0..trials)
            .map(|t| lt_trial(1000, 0xBEEF_0000 + t as u64))
            .sum::<f64>()
            / trials as f64;
        let raptor_avg: f64 = (0..trials)
            .map(|t| raptor_trial(1000, 0xBEEF_0000 + t as u64))
            .sum::<f64>()
            / trials as f64;
        assert!(
            raptor_avg < lt_avg,
            "raptor {raptor_avg:.4} did not beat LT {lt_avg:.4}"
        );
    }

    /// Overhead stays bounded across the size sweep the ISSUE names.
    /// Small k pays proportionally more (the √k·ln k ripple term); the
    /// bounds below are loose envelopes, not targets.
    #[test]
    #[cfg_attr(
        miri,
        ignore = "large-k statistical sweep; intractable under the Miri interpreter"
    )]
    fn lt_overhead_bounds_across_k() {
        for (k, trials, bound) in [(100usize, 30u64, 1.60), (1000, 10, 1.25), (10_000, 3, 1.15)] {
            let avg: f64 = (0..trials)
                .map(|t| lt_trial(k, 0x5EED_0000 + t))
                .sum::<f64>()
                / trials as f64;
            assert!(
                avg >= 1.0 && avg <= bound,
                "k = {k}: average reception {avg:.4} outside [1.0, {bound}]"
            );
        }
    }
}
