//! The LT (Luby Transform) layer: a seed-addressed rateless encoder and the
//! streaming peeling decoder that consumes its symbols.
//!
//! The central contract is **seed → equation determinism**: a 64-bit symbol
//! seed, run through a seeded [`ChaCha8Rng`], yields the same
//! `(degree, neighbor set)` on the encoder and on every decoder.  A sender
//! therefore never transmits equation structure — the wire carries only the
//! seed (in `df-proto`, packed into the 12-byte header's
//! `packet_index:serial` words) and the XOR payload.  Because the derivation
//! uses only integer PRNG output and CDF table lookups, it is bit-identical
//! across the GF kernel tiers (`DF_GF_FORCE_TIER` does not touch it).
//!
//! The decoder is the same peeling idea as [`crate::PeelingDecoder`], adapted
//! from a fixed bipartite graph to an unbounded stream of equations: each
//! arriving symbol is reduced against already-known source symbols, released
//! immediately if one unknown remains, or parked as a pending equation
//! indexed by its unknowns.  Every recovered symbol propagates through the
//! pending set worklist-style, exactly like `decode.rs` propagates through
//! cascade checks.
//!
//! Hostile-input posture: a forged seed cannot construct an invalid
//! equation — the degree is sampled from the shared distribution and clamped
//! to `1..=count`, and neighbors are distinct by construction — so the worst
//! a flood of fresh seeds can do is grow the pending set.  The decoder
//! exposes [`LtDecoder::pending_equations`] and [`LtDecoder::pending_edges`]
//! so the protocol layer can bound that growth (see
//! `df-proto`'s rateless receive path).

use crate::decode::AddOutcome;
use crate::error::{Result, TornadoError};
use crate::rateless::soliton::{DegreeTable, RobustSoliton};
use crate::symbol::Symbol;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::Arc;

/// Largest number of still-unknown source symbols the decoder will hand to
/// the inactivation finisher.
///
/// Robust-soliton peeling at moderate `k` completes in a phase transition:
/// recovery sits near zero (a few percent, from short degree-1 chains) until
/// a critical reception count, then one arrival avalanches essentially every
/// symbol at once — and the transition point has a fat upper tail (at
/// `k = 1000` roughly a quarter of decodes need more than `1.15·k` symbols).
/// The finisher removes that tail: once the reception count passes the
/// engagement point (see [`LtDecoder::add_symbol`]) it solves the buffered
/// equations directly by GF(2) Gaussian elimination — each row is a bitmask
/// over the missing symbols, so a *failed* attempt costs only integer work
/// and payloads are only XOR-combined once some unknowns are provably
/// determined.  This is "inactivation decoding" as in the Raptor standards
/// (RFC 5053 §5.5).
///
/// Because the transition leaves nearly all of `k` unknown, the elimination
/// is cubic-ish in `k` (`O(missing² · pending / 64)` bit operations) and the
/// cap bounds that cost: at `k ≤ 2048` one attempt is a few milliseconds;
/// beyond the cap the decoder stays purely linear-time peeling, which is the
/// right trade anyway — the soliton transition *concentrates* as `k` grows,
/// so large-`k` decodes do not need rescuing.
pub const INACTIVATION_CAP: usize = 2048;

/// Arrivals to wait before re-running a failed (rank-deficient) elimination.
const FINISHER_BACKOFF: u64 = 8;

fn mask_set(m: &mut [u64], bit: usize) {
    m[bit / 64] |= 1u64 << (bit % 64);
}

fn mask_xor(dst: &mut [u64], src: &[u64]) {
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d ^= s;
    }
}

fn mask_lowest(m: &[u64]) -> Option<usize> {
    m.iter()
        .enumerate()
        .find(|(_, &w)| w != 0)
        .map(|(i, &w)| i * 64 + w.trailing_zeros() as usize)
}

fn mask_popcount(m: &[u64]) -> usize {
    m.iter().map(|w| w.count_ones() as usize).sum()
}

fn mask_next_set(m: &[u64], from: usize) -> Option<usize> {
    let mut w = from / 64;
    if w >= m.len() {
        return None;
    }
    let mut word = m[w] & (!0u64 << (from % 64));
    loop {
        if word != 0 {
            return Some(w * 64 + word.trailing_zeros() as usize);
        }
        w += 1;
        if w >= m.len() {
            return None;
        }
        word = m[w];
    }
}

/// One LT equation: the encoded symbol is the XOR of the source symbols at
/// `neighbors`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LtEquation {
    /// Neighbor indices into the source symbol array — distinct, in the
    /// deterministic order the seeded derivation produced them.
    pub neighbors: Vec<u32>,
}

impl LtEquation {
    /// Equation degree (number of neighbors, always `1..=count`).
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }
}

/// The degree distribution an [`LtEncoder`] samples — part of the wire
/// contract (both ends must construct the identical distribution for the
/// seed → equation derivation to agree).
#[derive(Debug, Clone)]
enum LtDist {
    /// Robust soliton — plain-LT sessions (full recovery by peeling).
    Soliton(Arc<RobustSoliton>),
    /// Fixed table — Raptor's LT layer (partial recovery, precode repairs).
    Table(Arc<DegreeTable>),
}

impl LtDist {
    fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> usize {
        match self {
            LtDist::Soliton(s) => s.sample(rng),
            LtDist::Table(t) => t.sample(rng),
        }
    }
}

/// Seed-addressed LT encoder over `count` source symbols.
///
/// Cheap to clone (the CDF table is shared); the decoder embeds one to run
/// the identical seed → equation derivation.
#[derive(Debug, Clone)]
pub struct LtEncoder {
    count: usize,
    stream_seed: u64,
    dist: LtDist,
}

impl LtEncoder {
    /// Build an encoder over `count` symbols with a [`RobustSoliton`]
    /// distribution parameterised by `c` and `delta`.
    ///
    /// `stream_seed` (the session's `code_seed` in the protocol) is folded
    /// into every symbol-seed derivation so two sessions with different code
    /// seeds produce unrelated equations for the same wire serial.
    ///
    /// # Errors
    ///
    /// Propagates [`RobustSoliton::new`] parameter validation.
    pub fn new(count: usize, c: f64, delta: f64, stream_seed: u64) -> Result<Self> {
        Ok(LtEncoder::with_distribution(
            RobustSoliton::new(count, c, delta)?,
            stream_seed,
        ))
    }

    /// Build an encoder from an explicit robust-soliton distribution.
    pub fn with_distribution(soliton: RobustSoliton, stream_seed: u64) -> Self {
        LtEncoder {
            count: soliton.k(),
            stream_seed,
            dist: LtDist::Soliton(Arc::new(soliton)),
        }
    }

    /// Build an encoder over `count` symbols sampling a fixed
    /// [`DegreeTable`] — the Raptor LT layer's shape, where a constant mean
    /// degree and a smooth recovery curve matter more than full coverage.
    ///
    /// Degrees above `count` are clamped during derivation, so a table is
    /// usable for any `count ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`TornadoError::InvalidParameters`] if `count == 0`.
    pub fn with_table(count: usize, table: DegreeTable, stream_seed: u64) -> Result<Self> {
        if count == 0 {
            return Err(TornadoError::InvalidParameters {
                reason: "LT encoder needs at least one symbol".to_string(),
            });
        }
        Ok(LtEncoder {
            count,
            stream_seed,
            dist: LtDist::Table(Arc::new(table)),
        })
    }

    /// Number of source symbols the encoder combines.
    pub fn count(&self) -> usize {
        self.count
    }

    /// The robust-soliton distribution, when this encoder samples one
    /// (`None` for fixed-table encoders).
    pub fn soliton(&self) -> Option<&RobustSoliton> {
        match &self.dist {
            LtDist::Soliton(s) => Some(s),
            LtDist::Table(_) => None,
        }
    }

    /// The stream seed folded into every equation derivation.
    pub fn stream_seed(&self) -> u64 {
        self.stream_seed
    }

    /// Derive the equation for `seed` — deterministic, total over all 2^64
    /// seeds, and identical on encoder and decoder.
    ///
    /// The degree is drawn from the robust soliton and clamped to
    /// `1..=count`; neighbors are sampled distinct (rejection sampling for
    /// sparse equations, partial Fisher–Yates once the degree is a
    /// substantial fraction of `count`, chosen deterministically from the
    /// degree alone).
    pub fn equation(&self, seed: u64) -> LtEquation {
        let mut rng =
            ChaCha8Rng::seed_from_u64(seed ^ self.stream_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let degree = self.dist.sample(&mut rng).clamp(1, self.count);
        let neighbors = if degree * 8 >= self.count {
            // Dense equation: partial Fisher–Yates shuffle, O(count).
            let mut pool: Vec<u32> = (0..self.count as u32).collect();
            for i in 0..degree {
                let j = rng.gen_range(i..self.count);
                pool.swap(i, j);
            }
            pool.truncate(degree);
            pool
        } else {
            // Sparse equation: rejection-sample distinct indices.
            let mut picked: Vec<u32> = Vec::with_capacity(degree);
            while picked.len() < degree {
                let idx = rng.gen_range(0..self.count) as u32;
                if !picked.contains(&idx) {
                    picked.push(idx);
                }
            }
            picked
        };
        LtEquation { neighbors }
    }

    /// Encode one symbol: XOR together the neighbors of `seed`'s equation.
    ///
    /// # Errors
    ///
    /// Returns [`TornadoError::MalformedInput`] if `symbols.len() != count`.
    /// All symbols must share one length (payload XOR requires it).
    pub fn encode_symbol<S: Symbol>(&self, seed: u64, symbols: &[S]) -> Result<S> {
        if symbols.len() != self.count {
            return Err(TornadoError::MalformedInput {
                reason: format!(
                    "LT encoder over {} symbols was given {}",
                    self.count,
                    symbols.len()
                ),
            });
        }
        let eq = self.equation(seed);
        // Degree ≥ 1 by construction, so `first` always exists and the
        // accumulator starts from a real neighbor.
        let mut iter = eq.neighbors.iter().map(|&i| &symbols[i as usize]);
        let first = iter.next().ok_or_else(|| TornadoError::MalformedInput {
            reason: "LT equation with no neighbors".to_string(),
        })?;
        let mut acc = first.clone();
        for s in iter {
            acc.xor(s);
        }
        Ok(acc)
    }
}

/// A pending (not yet releasable) equation held by the decoder.
#[derive(Debug, Clone)]
struct PendingEq<S> {
    /// Neighbor indices still unknown, in no particular order.
    unknowns: Vec<u32>,
    /// Payload XOR-reduced by every already-known neighbor.
    acc: S,
}

/// Streaming LT decoder: accepts an unbounded stream of `(seed, payload)`
/// symbols and peels source symbols out as equations release.
///
/// Memory model: recovered symbols are `O(count)`; buffered equations are
/// whatever the caller admits — check [`LtDecoder::pending_equations`] /
/// [`LtDecoder::pending_edges`] *before* feeding a symbol to enforce a cap
/// (the protocol layer rejects above `buffer_cap`, mirroring the carousel
/// hardening).  Duplicate detection covers currently-pending seeds exactly;
/// a seed whose equation was already consumed re-reduces to nothing and is
/// absorbed without growing state.
#[derive(Debug, Clone)]
pub struct LtDecoder<S: Symbol> {
    encoder: LtEncoder,
    known: Vec<Option<S>>,
    known_count: usize,
    pending: HashMap<u64, PendingEq<S>>,
    pending_edges: usize,
    /// symbol index → seeds of pending equations that list it as unknown.
    /// Entries go stale when an equation resolves through another symbol;
    /// stale seeds are skipped (and dropped) on the next lookup.
    by_symbol: Vec<Vec<u64>>,
    /// Recovered indices not yet handed to the caller via
    /// [`LtDecoder::drain_recovered`].
    newly: Vec<u32>,
    received_total: u64,
    received_distinct: u64,
    /// Distinct-reception count before which the finisher will not re-run
    /// after a rank-deficient attempt (each new equation typically adds one
    /// rank, so retrying every arrival would repeat the same near-miss).
    next_finisher_attempt: u64,
    /// Distinct-reception threshold at which the finisher engages.
    /// Defaults to `count + count/8` (peeling-first); Raptor lowers it to
    /// `count` via [`LtDecoder::engage_finisher_eagerly`].
    finisher_gate: usize,
}

impl<S: Symbol> LtDecoder<S> {
    /// Build a decoder sharing `encoder`'s seed → equation derivation.
    pub fn new(encoder: LtEncoder) -> Self {
        let count = encoder.count();
        LtDecoder {
            encoder,
            known: vec![None; count],
            known_count: 0,
            pending: HashMap::new(),
            pending_edges: 0,
            by_symbol: vec![Vec::new(); count],
            newly: Vec::new(),
            received_total: 0,
            received_distinct: 0,
            next_finisher_attempt: 0,
            finisher_gate: count + count / 8,
        }
    }

    /// Engage the inactivation finisher as soon as reception reaches the
    /// symbol count itself, rather than waiting out the peeling transition.
    ///
    /// This is how [`crate::RaptorDecoder`] runs its LT layer: standard
    /// Raptor decoding is elimination-led ("inactivation decoding",
    /// RFC 5053 §5.5) — the precode repairs whatever the elimination leaves
    /// undetermined, so there is no reason to wait for the soliton avalanche
    /// plain LT needs.
    pub fn engage_finisher_eagerly(&mut self) {
        self.finisher_gate = self.count();
    }

    /// Number of source symbols.
    pub fn count(&self) -> usize {
        self.known.len()
    }

    /// The shared encoder (seed → equation derivation).
    pub fn encoder(&self) -> &LtEncoder {
        &self.encoder
    }

    /// Number of source symbols recovered so far.
    pub fn known(&self) -> usize {
        self.known_count
    }

    /// True once every source symbol is recovered.
    pub fn is_complete(&self) -> bool {
        self.known_count == self.known.len()
    }

    /// Symbols accepted, including duplicates.
    pub fn received_total(&self) -> u64 {
        self.received_total
    }

    /// Symbols accepted whose seed was not pending at arrival (exact for
    /// honest never-repeating streams).
    pub fn received_distinct(&self) -> u64 {
        self.received_distinct
    }

    /// Equations currently buffered (received but not yet released).
    pub fn pending_equations(&self) -> usize {
        self.pending.len()
    }

    /// Total unknown-neighbor references across buffered equations — the
    /// decoder's true `O(memory)` term, bounded by the caller's admission cap.
    pub fn pending_edges(&self) -> usize {
        self.pending_edges
    }

    /// The recovered symbol at `index`, if known.
    pub fn symbol(&self, index: usize) -> Option<&S> {
        self.known.get(index).and_then(|s| s.as_ref())
    }

    /// Indices recovered since the last drain (in recovery order).
    pub fn drain_recovered(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.newly)
    }

    /// All source symbols, once complete.
    pub fn source(&self) -> Option<Vec<S>> {
        if !self.is_complete() {
            return None;
        }
        Some(self.known.iter().filter_map(|s| s.clone()).collect())
    }

    /// Accept one `(seed, payload)` symbol.
    ///
    /// Returns [`AddOutcome::Duplicate`] if `seed` matches a buffered
    /// equation (or decoding already finished), [`AddOutcome::Complete`] when
    /// this symbol finishes decoding, [`AddOutcome::Accepted`] otherwise.
    ///
    /// All payloads must share one length; the protocol layer enforces this
    /// before the symbol reaches the decoder (mixed lengths would make the
    /// XOR reduction meaningless).
    pub fn add_symbol(&mut self, seed: u64, value: S) -> AddOutcome {
        self.received_total += 1;
        if self.is_complete() {
            return AddOutcome::Duplicate;
        }
        if self.pending.contains_key(&seed) {
            return AddOutcome::Duplicate;
        }
        self.received_distinct += 1;

        let eq = self.encoder.equation(seed);
        let mut acc = value;
        let mut unknowns: Vec<u32> = Vec::new();
        for &idx in &eq.neighbors {
            match &self.known[idx as usize] {
                Some(k) => acc.xor(k),
                None => unknowns.push(idx),
            }
        }
        match unknowns.len() {
            // Every neighbor already known: the equation carries no new
            // information; absorb it without growing state.
            0 => {}
            1 => {
                let idx = unknowns[0];
                self.resolve(idx, acc);
            }
            _ => {
                for &idx in &unknowns {
                    self.by_symbol[idx as usize].push(seed);
                }
                self.pending_edges += unknowns.len();
                self.pending.insert(seed, PendingEq { unknowns, acc });
            }
        }
        if !self.is_complete()
            && self.finisher_engaged()
            && self.received_distinct >= self.next_finisher_attempt
        {
            self.try_inactivation();
        }
        if self.is_complete() {
            AddOutcome::Complete
        } else {
            AddOutcome::Accepted
        }
    }

    /// Whether the inactivation finisher may run yet.
    ///
    /// Plain-LT decoders defer engagement until reception passes
    /// `count + count/8` symbols — past the robust soliton's expected peeling
    /// transition (`β·k` plus finite-k margin) — so the linear-time peeling
    /// path settles the typical decode and elimination only rescues
    /// transition-tail trials.  Raptor decoders lower the gate to `count`
    /// ([`LtDecoder::engage_finisher_eagerly`]): their completion is
    /// elimination-led by design.
    fn finisher_engaged(&self) -> bool {
        self.received_distinct as usize >= self.finisher_gate
    }

    /// Bounded-inactivation finisher: once at most [`INACTIVATION_CAP`]
    /// source symbols remain unknown, solve the buffered equations directly
    /// by GF(2) elimination instead of waiting for the peeling ripple to
    /// reach them.
    ///
    /// Every buffered equation's unknowns are a subset of the missing set
    /// (peeling reduces eagerly), so each equation is one bitmask row over
    /// the missing columns.  The elimination runs to *reduced* row-echelon
    /// form and commits every unknown that is uniquely determined — a pivot
    /// row whose only remaining bit is its own column — even when the system
    /// as a whole is rank-deficient.  Partial commits are what make the
    /// Raptor path work: a fixed-degree-table LT layer always leaves a few
    /// intermediates uncovered by every received equation, and the precode
    /// repairs exactly those, so demanding full rank would wait forever.
    ///
    /// A mask-only pass runs first; payloads are cloned and XOR-combined
    /// only when at least one unknown is provably determined, so a failed
    /// attempt costs integer work and no payload traffic.
    fn try_inactivation(&mut self) -> bool {
        let missing_count = self.known.len() - self.known_count;
        if missing_count == 0 || missing_count > INACTIVATION_CAP {
            return false;
        }
        // Even a partial solve needs roughly as many independent equations
        // as unknowns (the slack covers uncovered columns); skip the attempt
        // cheaply when the buffer cannot possibly deliver that.
        if self.pending.len() + 64 < missing_count {
            return false;
        }
        let missing: Vec<u32> = (0..self.known.len() as u32)
            .filter(|&i| self.known[i as usize].is_none())
            .collect();
        let words = missing_count.div_ceil(64);
        let col_of = |idx: u32| -> usize {
            // `missing` is sorted ascending by construction; every pending
            // unknown is in it (peeling keeps equations reduced).
            missing.partition_point(|&m| m < idx)
        };
        let row_of = |unknowns: &[u32]| -> Vec<u64> {
            let mut mask = vec![0u64; words];
            for &idx in unknowns {
                mask_set(&mut mask, col_of(idx));
            }
            mask
        };
        // Rows beyond this many cannot be needed for a solve; any solution
        // derived from a subset of the (consistent) equations is valid, so
        // truncating a flood-sized buffer only defers, never corrupts.
        let row_cap = missing_count + 512;

        // Pass 1: masks only.  Forward-eliminate into one pivot row per
        // column, then reduce to RREF from the highest pivot down (every
        // higher pivot a row references is already fully reduced — a single
        // bit plus free columns — when it is folded in).  Bail without
        // touching payloads unless some unknown came out determined.
        let mut pivot_mask: Vec<Option<Vec<u64>>> = vec![None; missing_count];
        let mut rank = 0usize;
        for eq in self.pending.values().take(row_cap) {
            let mut mask = row_of(&eq.unknowns);
            while let Some(c) = mask_lowest(&mask) {
                match &pivot_mask[c] {
                    Some(pm) => mask_xor(&mut mask, pm),
                    None => {
                        pivot_mask[c] = Some(mask);
                        rank += 1;
                        break;
                    }
                }
            }
            if rank == missing_count {
                break;
            }
        }
        let mut determined = 0usize;
        for c in (0..missing_count).rev() {
            let Some(mut mask) = pivot_mask[c].take() else {
                continue;
            };
            let mut h = c;
            while let Some(b) = mask_next_set(&mask, h + 1) {
                if let Some(pm) = &pivot_mask[b] {
                    // Folding in row `b` clears bit `b` and can only set
                    // free (pivotless) bits above it, so the ascending scan
                    // terminates.
                    mask_xor(&mut mask, pm);
                }
                h = b;
            }
            if mask_popcount(&mask) == 1 {
                determined += 1;
            }
            pivot_mask[c] = Some(mask);
        }
        if determined == 0 {
            self.next_finisher_attempt = self.received_distinct + FINISHER_BACKOFF;
            return false;
        }

        // Pass 2: repeat the identical elimination carrying payloads — the
        // pending map was not touched, so iteration order and hence the
        // pivot structure match pass 1 exactly — then commit every
        // single-bit row through the ordinary peeling propagation (which
        // also re-reduces the surviving pending equations).
        let mut pivots: Vec<Option<(Vec<u64>, S)>> = (0..missing_count).map(|_| None).collect();
        let mut placed = 0usize;
        for eq in self.pending.values().take(row_cap) {
            let mut mask = row_of(&eq.unknowns);
            let mut acc = eq.acc.clone();
            while let Some(c) = mask_lowest(&mask) {
                match &pivots[c] {
                    Some((pm, pa)) => {
                        mask_xor(&mut mask, pm);
                        acc.xor(pa);
                    }
                    None => {
                        pivots[c] = Some((mask, acc));
                        placed += 1;
                        break;
                    }
                }
            }
            if placed == rank {
                break;
            }
        }
        let mut recovered: Vec<(u32, S)> = Vec::with_capacity(determined);
        for c in (0..missing_count).rev() {
            let Some((mut mask, mut acc)) = pivots[c].take() else {
                continue;
            };
            let mut h = c;
            while let Some(b) = mask_next_set(&mask, h + 1) {
                if let Some((pm, pa)) = &pivots[b] {
                    mask_xor(&mut mask, pm);
                    acc.xor(pa);
                }
                h = b;
            }
            if mask_popcount(&mask) == 1 {
                recovered.push((missing[c], acc.clone()));
            }
            pivots[c] = Some((mask, acc));
        }
        if recovered.is_empty() {
            // Unreachable given pass 1, but degrade gracefully.
            self.next_finisher_attempt = self.received_distinct + FINISHER_BACKOFF;
            return false;
        }
        for (idx, value) in recovered {
            self.resolve(idx, value);
        }
        true
    }

    /// Worklist propagation: record `idx = value`, then reduce every pending
    /// equation that listed `idx`, releasing any that reach one unknown —
    /// the streaming analogue of `PeelingDecoder::propagate`.
    fn resolve(&mut self, idx: u32, value: S) {
        let mut worklist = vec![(idx, value)];
        while let Some((idx, value)) = worklist.pop() {
            let slot = &mut self.known[idx as usize];
            if slot.is_some() {
                // Recovered along two paths (e.g. two equations released on
                // the same symbol in one cascade); first value wins.
                continue;
            }
            *slot = Some(value);
            self.known_count += 1;
            self.newly.push(idx);

            for seed in std::mem::take(&mut self.by_symbol[idx as usize]) {
                let Entry::Occupied(mut entry) = self.pending.entry(seed) else {
                    continue; // stale reference to an already-released equation
                };
                let eq = entry.get_mut();
                let Some(pos) = eq.unknowns.iter().position(|&u| u == idx) else {
                    continue;
                };
                eq.unknowns.swap_remove(pos);
                self.pending_edges -= 1;
                // The freshly-set slot always holds a value here.
                if let Some(known) = &self.known[idx as usize] {
                    eq.acc.xor(known);
                }
                if eq.unknowns.len() == 1 {
                    let eq = entry.remove();
                    self.pending_edges -= 1;
                    worklist.push((eq.unknowns[0], eq.acc));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Mark;
    use rand::RngCore;

    fn payloads(count: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                let mut p = vec![0u8; len];
                rng.fill_bytes(&mut p);
                p
            })
            .collect()
    }

    #[test]
    fn equation_derivation_is_deterministic_and_valid() {
        let enc = LtEncoder::new(257, 0.03, 0.5, 99).unwrap();
        for seed in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF_0BAD_F00D] {
            let a = enc.equation(seed);
            let b = enc.equation(seed);
            assert_eq!(a, b);
            assert!((1..=257).contains(&a.degree()));
            let mut sorted = a.neighbors.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), a.degree(), "neighbors must be distinct");
            assert!(sorted.iter().all(|&i| i < 257));
        }
    }

    #[test]
    fn different_stream_seeds_decorrelate_equations() {
        let a = LtEncoder::new(100, 0.03, 0.5, 1).unwrap();
        let b = LtEncoder::new(100, 0.03, 0.5, 2).unwrap();
        let same = (0..64u64)
            .filter(|&s| a.equation(s) == b.equation(s))
            .count();
        assert!(same < 8, "{same} of 64 equations collided across streams");
    }

    // Pinned by running the derivation once at PR 8 time; see the test below.
    const GOLDEN_0: &[u32] = &[3, 4, 0, 7];
    const GOLDEN_1: &[u32] = &[8, 1, 14, 0, 5, 15, 3, 11, 10, 7, 13, 12];
    const GOLDEN_2: &[u32] = &[15, 10];
    const GOLDEN_3: &[u32] = &[10, 0];

    #[test]
    fn golden_equations_pin_the_wire_contract() {
        // These exact neighbor sets are what PR 8 shipped; any drift here is
        // a wire-format break (receivers derive equations from serials
        // alone).  The derivation is pure ChaCha8 + CDF lookup, so it must
        // also be identical under every `DF_GF_FORCE_TIER` kernel tier.
        let enc = LtEncoder::new(16, 0.03, 0.5, 0).unwrap();
        let got: Vec<Vec<u32>> = (0..4u64).map(|s| enc.equation(s).neighbors).collect();
        let expect: Vec<Vec<u32>> = vec![
            GOLDEN_0.to_vec(),
            GOLDEN_1.to_vec(),
            GOLDEN_2.to_vec(),
            GOLDEN_3.to_vec(),
        ];
        assert_eq!(got, expect);
        // And re-deriving through a *fresh* encoder built from the same
        // parameters gives the same equations (decoder-side reconstruction).
        let dec_side = LtEncoder::new(16, 0.03, 0.5, 0).unwrap();
        for s in 0..32u64 {
            assert_eq!(enc.equation(s), dec_side.equation(s));
        }
    }

    #[test]
    fn round_trips_payloads_at_small_k() {
        let k = 40;
        let src = payloads(k, 64, 5);
        let enc = LtEncoder::new(k, 0.03, 0.5, 5).unwrap();
        let mut dec = LtDecoder::new(enc.clone());
        let mut seed = 0u64;
        while !dec.is_complete() {
            let sym = enc.encode_symbol(seed, &src).unwrap();
            dec.add_symbol(seed, sym);
            seed += 1;
            assert!(seed < 10 * k as u64, "decode did not converge");
        }
        assert_eq!(dec.source().unwrap(), src);
    }

    #[test]
    fn duplicates_are_flagged_and_harmless() {
        let k = 30;
        let src = payloads(k, 16, 9);
        let enc = LtEncoder::new(k, 0.03, 0.5, 9).unwrap();
        let mut dec = LtDecoder::new(enc.clone());
        // Find a seed whose equation has degree > 2 so it stays pending.
        let seed = (0..1000u64)
            .find(|&s| enc.equation(s).degree() > 2)
            .unwrap();
        let sym = enc.encode_symbol(seed, &src).unwrap();
        assert_eq!(dec.add_symbol(seed, sym.clone()), AddOutcome::Accepted);
        assert_eq!(dec.add_symbol(seed, sym), AddOutcome::Duplicate);
        assert_eq!(dec.received_total(), 2);
        assert_eq!(dec.received_distinct(), 1);
        assert_eq!(dec.pending_equations(), 1);
    }

    #[test]
    fn symbolic_and_payload_decoders_agree_on_the_schedule() {
        let k = 64;
        let src = payloads(k, 8, 3);
        let enc = LtEncoder::new(k, 0.05, 0.5, 3).unwrap();
        let mut payload = LtDecoder::<Vec<u8>>::new(enc.clone());
        let mut marks = LtDecoder::<Mark>::new(enc.clone());
        let mut seed = 0u64;
        while !payload.is_complete() {
            let sym = enc.encode_symbol(seed, &src).unwrap();
            let a = payload.add_symbol(seed, sym);
            let b = marks.add_symbol(seed, Mark);
            assert_eq!(a, b, "schedules diverged at seed {seed}");
            assert_eq!(payload.known(), marks.known());
            seed += 1;
            assert!(seed < 20 * k as u64, "decode did not converge");
        }
        assert!(marks.is_complete());
        assert_eq!(payload.source().unwrap(), src);
    }

    #[test]
    fn pending_edge_accounting_balances() {
        let k = 50;
        let src = payloads(k, 8, 11);
        let enc = LtEncoder::new(k, 0.03, 0.5, 11).unwrap();
        let mut dec = LtDecoder::new(enc.clone());
        for seed in 0..(3 * k as u64) {
            let sym = enc.encode_symbol(seed, &src).unwrap();
            dec.add_symbol(seed, sym);
            // The edge counter must equal the sum of unknowns across pending
            // equations at every step.
            assert_eq!(
                dec.pending_edges(),
                dec.pending
                    .values()
                    .map(|e| e.unknowns.len())
                    .sum::<usize>()
            );
            if dec.is_complete() {
                break;
            }
        }
        assert!(dec.is_complete());
    }

    #[test]
    fn inactivation_finisher_solves_peeling_stalls() {
        let k = 3;
        let src = payloads(k, 8, 21);
        let enc = LtEncoder::new(k, 0.03, 0.5, 21).unwrap();
        let find = |want: &[u32]| {
            (0..200_000u64)
                .find(|&s| {
                    let mut n = enc.equation(s).neighbors.clone();
                    n.sort_unstable();
                    n == want
                })
                .expect("seed with target equation")
        };
        let s01 = find(&[0, 1]);
        let s12 = find(&[1, 2]);
        let s012 = find(&[0, 1, 2]);
        let mut dec = LtDecoder::new(enc.clone());
        let a = dec.add_symbol(s01, enc.encode_symbol(s01, &src).unwrap());
        assert_eq!(a, AddOutcome::Accepted);
        let b = dec.add_symbol(s12, enc.encode_symbol(s12, &src).unwrap());
        assert_eq!(b, AddOutcome::Accepted);
        assert_eq!(dec.known(), 0, "no degree-1 equation arrived yet");
        // No degree-1 equation ever arrives, so pure peeling would stall
        // forever on this stream.  The third (independent) equation gives the
        // bounded-inactivation finisher a full-rank 3x3 GF(2) system.
        let c = dec.add_symbol(s012, enc.encode_symbol(s012, &src).unwrap());
        assert_eq!(c, AddOutcome::Complete);
        assert_eq!(dec.source().unwrap(), src);
        assert_eq!(dec.pending_equations(), 0);
        assert_eq!(dec.pending_edges(), 0);
    }

    #[test]
    fn eager_finisher_commits_determined_unknowns_at_deficient_rank() {
        // Raptor's regime: one symbol (here index 2) is covered by no
        // received equation, so the system can never reach full rank — but
        // the other unknowns are still uniquely determined and must be
        // committed.  Equations [0,1] and [0,1,3] leave {0,1} entangled;
        // adding [1,3] determines everything except the uncovered 2.
        let k = 4;
        let src = payloads(k, 8, 33);
        let enc = LtEncoder::new(k, 0.03, 0.5, 33).unwrap();
        let find = |want: &[u32]| {
            (0..400_000u64)
                .find(|&s| {
                    let mut n = enc.equation(s).neighbors.clone();
                    n.sort_unstable();
                    n == want
                })
                .expect("seed with target equation")
        };
        let s01 = find(&[0, 1]);
        let s013 = find(&[0, 1, 3]);
        let s13 = find(&[1, 3]);
        // A second, independent seed with the same [0,1] equation: linearly
        // redundant, but it lifts distinct reception to the eager gate
        // (`count`) so the finisher may run.
        let s01b = ((s01 + 1)..400_000u64)
            .find(|&s| {
                let mut n = enc.equation(s).neighbors.clone();
                n.sort_unstable();
                n == [0, 1]
            })
            .expect("second seed with [0,1]");
        let mut dec = LtDecoder::new(enc.clone());
        dec.engage_finisher_eagerly();
        dec.add_symbol(s01, enc.encode_symbol(s01, &src).unwrap());
        dec.add_symbol(s013, enc.encode_symbol(s013, &src).unwrap());
        dec.add_symbol(s13, enc.encode_symbol(s13, &src).unwrap());
        assert_eq!(dec.known(), 0, "below the eager gate nothing eliminates");
        dec.add_symbol(s01b, enc.encode_symbol(s01b, &src).unwrap());
        assert_eq!(dec.known(), 3, "all covered unknowns must commit");
        for idx in [0usize, 1, 3] {
            assert_eq!(dec.symbol(idx), Some(&src[idx]));
        }
        assert_eq!(dec.symbol(2), None, "uncovered symbol stays unknown");
        assert!(!dec.is_complete());
    }

    #[test]
    fn encode_rejects_wrong_symbol_count() {
        let enc = LtEncoder::new(10, 0.03, 0.5, 0).unwrap();
        let src = payloads(9, 8, 0);
        assert!(enc.encode_symbol(0, &src).is_err());
    }
}
