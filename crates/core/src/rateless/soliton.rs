//! The robust soliton degree distribution that drives LT encoding.
//!
//! Luby's ideal soliton distribution `ρ(d)` keeps the expected decoding
//! ripple at exactly one symbol — optimal in expectation and hopeless in
//! practice, because any variance kills the ripple.  The *robust* soliton
//! adds the correction `τ(d)`, parameterised by `c` and `δ`: a boost of the
//! low degrees that keeps the expected ripple near `R = c·ln(k/δ)·√k`
//! throughout decoding, plus a probability spike at degree `k/R` that makes
//! sure every source symbol is covered by the time the ripple should finish.
//! The normalised sum `μ(d) = (ρ(d) + τ(d)) / β` is the distribution actually
//! sampled; `β = Σ(ρ + τ)` is also the asymptotic reception overhead the
//! distribution implies.
//!
//! Sampling is inverse-CDF over a precomputed table, so one degree draw costs
//! one `f64` from the (seeded, deterministic) generator plus a binary search.
//! Both the encoder and the decoder sample the same table with the same
//! seeded generator, which is what lets a 64-bit wire serial stand in for the
//! whole equation (see [`crate::rateless::LtEncoder`]).

use crate::error::{Result, TornadoError};
use rand::Rng;

/// The robust soliton distribution `μ(d)` over degrees `1..=k`.
///
/// Construction follows Luby's paper: with `R = c·ln(k/δ)·√k` and
/// `spike = round(k/R)` clamped into `1..=k`,
///
/// * `ρ(1) = 1/k`, `ρ(d) = 1/(d(d−1))` for `d ≥ 2`;
/// * `τ(d) = R/(d·k)` for `d < spike`, `τ(spike) = R·ln(R/δ)/k`, else `0`.
///
/// `δ` is the target failure probability of the decoder once `k·β` symbols
/// have been received; `c` trades overhead (small `c`) against ripple
/// robustness (large `c`).
#[derive(Debug, Clone)]
pub struct RobustSoliton {
    k: usize,
    c: f64,
    delta: f64,
    r: f64,
    spike: usize,
    beta: f64,
    mean: f64,
    /// `pmf[d - 1] = μ(d)`.
    pmf: Vec<f64>,
    /// `cdf[d - 1] = Σ_{e ≤ d} μ(e)`, monotone with `cdf[k - 1] == 1.0`.
    cdf: Vec<f64>,
}

impl RobustSoliton {
    /// Build the distribution for `k` source symbols.
    ///
    /// # Errors
    ///
    /// Returns [`TornadoError::InvalidParameters`] if `k == 0`, `c` is not a
    /// positive finite number, or `δ` is outside `(0, 1)`.
    pub fn new(k: usize, c: f64, delta: f64) -> Result<Self> {
        if k == 0 {
            return Err(TornadoError::InvalidParameters {
                reason: "robust soliton needs at least one symbol".to_string(),
            });
        }
        if !(c.is_finite() && c > 0.0) {
            return Err(TornadoError::InvalidParameters {
                reason: format!("robust soliton parameter c must be positive, got {c}"),
            });
        }
        if !(delta > 0.0 && delta < 1.0) {
            return Err(TornadoError::InvalidParameters {
                reason: format!("robust soliton parameter delta must be in (0, 1), got {delta}"),
            });
        }
        let kf = k as f64;
        // R can fall below 1 for tiny k; clamp so the spike lands in range and
        // the ln(R/δ) term stays meaningful.
        let r = (c * (kf / delta).ln() * kf.sqrt()).max(1.0);
        let spike = ((kf / r).round() as usize).clamp(1, k);

        let mut weights = vec![0.0f64; k];
        weights[0] = 1.0 / kf; // ρ(1)
        for d in 2..=k {
            weights[d - 1] = 1.0 / (d as f64 * (d as f64 - 1.0)); // ρ(d)
        }
        for d in 1..spike {
            weights[d - 1] += r / (d as f64 * kf); // τ(d), d < spike
        }
        weights[spike - 1] += (r * (r / delta).ln() / kf).max(0.0); // τ(spike)

        let beta: f64 = weights.iter().sum();
        let mut pmf = weights;
        for w in &mut pmf {
            *w /= beta;
        }
        let mean = pmf
            .iter()
            .enumerate()
            .map(|(i, p)| (i as f64 + 1.0) * p)
            .sum();
        let mut cdf = Vec::with_capacity(k);
        let mut acc = 0.0;
        for &p in &pmf {
            acc += p;
            cdf.push(acc);
        }
        // Guard the tail against accumulated rounding so a draw of u → 1.0
        // can never fall past the table.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(RobustSoliton {
            k,
            c,
            delta,
            r,
            spike,
            beta,
            mean,
            pmf,
            cdf,
        })
    }

    /// Number of symbols `k` the distribution ranges over.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The `c` parameter.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// The `δ` parameter (target decode-failure probability at `β·k` symbols).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// The expected ripple size `R = c·ln(k/δ)·√k` (clamped to at least 1).
    pub fn ripple(&self) -> f64 {
        self.r
    }

    /// Degree of the `τ` probability spike, `round(k/R)` clamped to `1..=k`.
    pub fn spike(&self) -> usize {
        self.spike
    }

    /// The normalisation constant `β = Σ(ρ + τ)` — also the asymptotic
    /// reception overhead factor the distribution is designed for.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Mean degree `Σ d·μ(d)`, the expected XOR cost per encoded symbol.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The probability mass function: `pmf()[d - 1] = μ(d)`.
    pub fn pmf(&self) -> &[f64] {
        &self.pmf
    }

    /// Draw one degree in `1..=k` by inverse-CDF sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First degree whose cumulative mass reaches u; the tail pin above
        // guarantees the search lands inside the table.
        let idx = self.cdf.partition_point(|&p| p < u);
        idx.min(self.k - 1) + 1
    }
}

/// A fixed finite degree distribution, sampled like [`RobustSoliton`] by
/// inverse CDF.
///
/// The robust soliton is built for *full* recovery by peeling: its spike
/// drags the mean degree up (≈ `ln k`) and concentrates completion in a late
/// avalanche.  Raptor's LT layer wants the opposite trade — a constant mean
/// degree and a smooth recovery curve that reaches *most* symbols early,
/// leaving the stragglers to the precode.  Shokrollahi's Raptor paper
/// (IEEE IT 2006, Table I) derives small fixed tables with exactly that
/// property; [`crate::rateless::RaptorCode`] uses one of them
/// (`RAPTOR_DEGREE_TABLE` in `raptor.rs`).
#[derive(Debug, Clone)]
pub struct DegreeTable {
    /// Ascending distinct degrees.
    degrees: Vec<usize>,
    /// `cdf[i]` = cumulative mass of `degrees[..=i]`, tail pinned to 1.0.
    cdf: Vec<f64>,
    mean: f64,
}

impl DegreeTable {
    /// Build a table from `(degree, weight)` pairs.  Weights are normalised;
    /// they do not have to sum to 1.
    ///
    /// # Errors
    ///
    /// Returns [`TornadoError::InvalidParameters`] if the table is empty, a
    /// degree is zero or non-increasing, or a weight is not a positive finite
    /// number.
    pub fn new(entries: &[(usize, f64)]) -> Result<Self> {
        if entries.is_empty() {
            return Err(TornadoError::InvalidParameters {
                reason: "degree table needs at least one entry".to_string(),
            });
        }
        let mut prev = 0usize;
        for &(d, w) in entries {
            if d == 0 || d <= prev {
                return Err(TornadoError::InvalidParameters {
                    reason: format!("degree table entries must be ascending and positive, got {d}"),
                });
            }
            if !(w.is_finite() && w > 0.0) {
                return Err(TornadoError::InvalidParameters {
                    reason: format!("degree table weight for degree {d} must be positive, got {w}"),
                });
            }
            prev = d;
        }
        let total: f64 = entries.iter().map(|&(_, w)| w).sum();
        let degrees: Vec<usize> = entries.iter().map(|&(d, _)| d).collect();
        let mean = entries
            .iter()
            .map(|&(d, w)| d as f64 * w / total)
            .sum::<f64>();
        let mut cdf = Vec::with_capacity(entries.len());
        let mut acc = 0.0;
        for &(_, w) in entries {
            acc += w / total;
            cdf.push(acc);
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(DegreeTable { degrees, cdf, mean })
    }

    /// Largest degree in the table.
    pub fn max_degree(&self) -> usize {
        // Non-empty by construction.
        self.degrees.last().copied().unwrap_or(1)
    }

    /// Mean degree `Σ d·Ω(d)`, the expected XOR cost per encoded symbol.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Draw one degree by inverse-CDF sampling.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let idx = self.cdf.partition_point(|&p| p < u);
        self.degrees[idx.min(self.degrees.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mass_sums_to_one() {
        for k in [1usize, 2, 10, 100, 1000, 10_000] {
            let s = RobustSoliton::new(k, 0.03, 0.5).unwrap();
            let total: f64 = s.pmf().iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "k = {k}: mass {total}");
            assert_eq!(s.pmf().len(), k);
        }
    }

    #[test]
    fn spike_sits_at_k_over_r_and_carries_extra_mass() {
        let k = 1000;
        let s = RobustSoliton::new(k, 0.03, 0.5).unwrap();
        let expected = ((k as f64 / s.ripple()).round() as usize).clamp(1, k);
        assert_eq!(s.spike(), expected);
        assert!(s.spike() > 2 && s.spike() < k);
        // The spike is a genuine local maximum: μ(spike) exceeds both
        // neighbours, which smooth ρ + geometric τ could never do on its own.
        let spike = s.spike();
        assert!(s.pmf()[spike - 1] > s.pmf()[spike - 2] * 2.0);
        assert!(s.pmf()[spike - 1] > s.pmf()[spike]);
    }

    #[test]
    fn degenerate_single_symbol_always_degree_one() {
        let s = RobustSoliton::new(1, 0.03, 0.5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 1);
        }
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let s = RobustSoliton::new(500, 0.03, 0.5).unwrap();
        let draw = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            (0..64).map(|_| s.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn samples_match_the_pmf_roughly() {
        let k = 100;
        let s = RobustSoliton::new(k, 0.03, 0.5).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = 200_000;
        let mut counts = vec![0usize; k];
        for _ in 0..n {
            let d = s.sample(&mut rng);
            assert!((1..=k).contains(&d));
            counts[d - 1] += 1;
        }
        // Degrees 1, 2 and the spike all carry macroscopic mass; check the
        // empirical frequencies land within a few standard deviations.
        for d in [1usize, 2, s.spike()] {
            let p = s.pmf()[d - 1];
            let got = counts[d - 1] as f64 / n as f64;
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            assert!(
                (got - p).abs() < 6.0 * sigma + 1e-4,
                "degree {d}: expected {p}, got {got}"
            );
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(RobustSoliton::new(0, 0.03, 0.5).is_err());
        assert!(RobustSoliton::new(10, 0.0, 0.5).is_err());
        assert!(RobustSoliton::new(10, -1.0, 0.5).is_err());
        assert!(RobustSoliton::new(10, f64::NAN, 0.5).is_err());
        assert!(RobustSoliton::new(10, 0.03, 0.0).is_err());
        assert!(RobustSoliton::new(10, 0.03, 1.0).is_err());
    }

    #[test]
    fn degree_table_validates_and_samples_its_support() {
        assert!(DegreeTable::new(&[]).is_err());
        assert!(DegreeTable::new(&[(0, 0.5)]).is_err());
        assert!(DegreeTable::new(&[(2, 0.5), (2, 0.5)]).is_err());
        assert!(DegreeTable::new(&[(3, 0.5), (2, 0.5)]).is_err());
        assert!(DegreeTable::new(&[(1, 0.0)]).is_err());
        assert!(DegreeTable::new(&[(1, f64::NAN)]).is_err());

        let t = DegreeTable::new(&[(1, 1.0), (2, 2.0), (10, 1.0)]).unwrap();
        assert_eq!(t.max_degree(), 10);
        assert!((t.mean() - (1.0 + 4.0 + 10.0) / 4.0).abs() < 1e-12);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            match t.sample(&mut rng) {
                1 => counts[0] += 1,
                2 => counts[1] += 1,
                10 => counts[2] += 1,
                d => panic!("degree {d} outside the table support"),
            }
        }
        // 25 / 50 / 25 % within a loose statistical envelope.
        assert!((counts[0] as f64 / 40_000.0 - 0.25).abs() < 0.02);
        assert!((counts[1] as f64 / 40_000.0 - 0.50).abs() < 0.02);
        assert!((counts[2] as f64 / 40_000.0 - 0.25).abs() < 0.02);
    }

    #[test]
    fn beta_tracks_the_tau_correction() {
        // β > 1 always (τ adds mass), and grows with c.
        let lo = RobustSoliton::new(1000, 0.01, 0.5).unwrap();
        let hi = RobustSoliton::new(1000, 0.1, 0.5).unwrap();
        assert!(lo.beta() > 1.0);
        assert!(hi.beta() > lo.beta());
    }
}
