//! The peeling (substitution) decoder for Tornado codes.
//!
//! Decoding is the process described in Section 5.1 of the paper: every check
//! packet is the XOR of its neighbours in the previous cascade level, so
//! whenever a known check packet has exactly one unknown neighbour, that
//! neighbour is recovered with a handful of XORs; whenever all neighbours of
//! an *unknown* check packet are known, the check packet itself can be
//! recomputed (which in turn feeds the next cascade level and the final
//! Reed–Solomon block).  The final cascade level is recovered through the
//! conventional MDS code as soon as enough of its block has arrived.  The
//! decoder runs this relaxation to a fixed point after every packet arrival,
//! so it can operate in either of the two client modes discussed in
//! Section 7.2 — incremental (decode as packets arrive) or statistical
//! (buffer ≈ (1+ε)k packets, then decode in one go); both are exercised by the
//! tests.
//!
//! The decoder is generic over [`Symbol`]: with `Vec<u8>` it produces real
//! payloads, with [`crate::symbol::Mark`] it is the index-only decoder
//! used by the reception-efficiency simulations (Figures 4–6).

use crate::cascade::{Cascade, PacketRole};
use crate::error::{Result, TornadoError};
use crate::symbol::{Mark, Symbol};
use std::borrow::Borrow;
use std::sync::Arc;

/// Outcome of feeding one packet to the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddOutcome {
    /// The packet index had already been received or recovered; it contributed
    /// nothing (a "useless duplicate" in the paper's terminology).
    Duplicate,
    /// The packet was new but the source data is not yet fully recovered.
    Accepted,
    /// The packet was new and the source data is now fully recovered.
    Complete,
}

/// Incremental peeling decoder over an agreed [`Cascade`].
///
/// Generic over how the cascade is held (`C`): a plain reference for
/// short-lived decoders ([`PayloadDecoder`], [`SymbolicDecoder`]) or an
/// [`Arc`] for decoders that must live independently of the code that created
/// them ([`OwnedPayloadDecoder`]) — e.g. a protocol session that keeps one
/// decoder alive across many statistical decode attempts.
#[derive(Debug, Clone)]
pub struct PeelingDecoder<S: Symbol, C: Borrow<Cascade> + Clone> {
    cascade: C,
    /// Current value of every encoding packet (global index), if known.
    values: Vec<Option<S>>,
    /// Per check node (levels 1..): number of still-unknown left neighbours.
    unknown_left: Vec<u32>,
    /// Per check node: XOR of the already-known left neighbours.
    acc: Vec<Option<S>>,
    /// Global index of the first check node (= first packet of level 1), when
    /// the cascade has more than one level.
    check_base: usize,
    /// Number of check nodes (packets in levels 1..).
    check_count: usize,
    /// Distinct packets currently known (received or recovered).
    known: usize,
    /// Distinct packets received from the channel.
    received_distinct: usize,
    /// Packets offered including duplicates.
    received_total: usize,
    /// Known packets among the source level.
    source_known: usize,
    /// Known packets among the final block (last level + RS checks).
    rs_block_known: usize,
    /// Whether the final level has already been recovered through the MDS
    /// code.
    rs_done: bool,
}

impl<S: Symbol, C: Borrow<Cascade> + Clone> PeelingDecoder<S, C> {
    /// Create a decoder for the given cascade with no packets received yet.
    pub fn new(cascade: C) -> Self {
        let c: &Cascade = cascade.borrow();
        let check_base = if c.num_levels() > 1 {
            c.level_offset(1)
        } else {
            c.rs_offset()
        };
        let check_count = c.rs_offset() - check_base;
        let mut unknown_left = Vec::with_capacity(check_count);
        for level in 1..c.num_levels() {
            let graph = &c.graphs()[level - 1];
            for pos in 0..graph.right() {
                unknown_left.push(graph.check_neighbors(pos).len() as u32);
            }
        }
        debug_assert_eq!(unknown_left.len(), check_count);
        let n = c.n();
        PeelingDecoder {
            cascade,
            values: vec![None; n],
            unknown_left,
            acc: vec![None; check_count],
            check_base,
            check_count,
            known: 0,
            received_distinct: 0,
            received_total: 0,
            source_known: 0,
            rs_block_known: 0,
            rs_done: false,
        }
    }

    /// The cascade this decoder operates on.
    pub fn cascade(&self) -> &Cascade {
        self.cascade.borrow()
    }

    /// True once every source packet is known.
    pub fn is_complete(&self) -> bool {
        self.source_known == self.cascade.borrow().k()
    }

    /// Distinct packets received from the channel so far.
    pub fn received_distinct(&self) -> usize {
        self.received_distinct
    }

    /// Total packets offered, including duplicates.
    pub fn received_total(&self) -> usize {
        self.received_total
    }

    /// Number of packets currently known (received or recovered).
    pub fn known(&self) -> usize {
        self.known
    }

    /// Reception overhead so far: `received_total / k − 1`.
    ///
    /// Matches the paper's definition: overhead ε means `(1 + ε)·k` encoding
    /// packets had to be pulled from the channel to reconstruct the source
    /// data.  Every received packet counts, including ones whose content the
    /// decoder had already recovered or already received.
    pub fn reception_overhead(&self) -> f64 {
        self.received_total as f64 / self.cascade.borrow().k() as f64 - 1.0
    }

    /// Feed one encoding packet to the decoder.
    ///
    /// # Errors
    ///
    /// Returns [`TornadoError::MalformedInput`] for an out-of-range index and
    /// propagates final-code errors.
    pub fn add_packet(&mut self, index: usize, value: S) -> Result<AddOutcome> {
        if self.register(index)? {
            return Ok(AddOutcome::Duplicate);
        }
        self.accept_new(index, value)
    }

    /// Feed one encoding packet by reference, cloning the payload only if the
    /// packet is new.
    ///
    /// This is the right entry point when the caller keeps ownership of the
    /// encoding (a carousel buffer, a benchmark's reference copy): duplicates
    /// — the common case late in a lossy download — cost no allocation at
    /// all.
    ///
    /// # Errors
    ///
    /// Same as [`PeelingDecoder::add_packet`].
    pub fn add_packet_ref(&mut self, index: usize, value: &S) -> Result<AddOutcome> {
        if self.register(index)? {
            return Ok(AddOutcome::Duplicate);
        }
        self.accept_new(index, value.clone())
    }

    /// Validate `index`, count the reception, and report whether the packet
    /// is a duplicate.
    fn register(&mut self, index: usize) -> Result<bool> {
        if index >= self.cascade.borrow().n() {
            return Err(TornadoError::MalformedInput {
                reason: format!(
                    "packet index {index} out of range for n = {}",
                    self.cascade.borrow().n()
                ),
            });
        }
        self.received_total += 1;
        Ok(self.values[index].is_some())
    }

    /// Take ownership of a new packet's value and run peeling.
    fn accept_new(&mut self, index: usize, value: S) -> Result<AddOutcome> {
        self.received_distinct += 1;
        self.propagate(index, value)?;
        if self.is_complete() {
            Ok(AddOutcome::Complete)
        } else {
            Ok(AddOutcome::Accepted)
        }
    }

    /// Feed a batch of `(index, value)` pairs (the "statistical" client mode).
    ///
    /// # Errors
    ///
    /// Same as [`PeelingDecoder::add_packet`].
    pub fn add_packets<I>(&mut self, packets: I) -> Result<bool>
    where
        I: IntoIterator<Item = (usize, S)>,
    {
        for (idx, value) in packets {
            self.add_packet(idx, value)?;
        }
        Ok(self.is_complete())
    }

    /// The recovered source packets, if decoding is complete.
    pub fn source(&self) -> Option<Vec<S>> {
        if !self.is_complete() {
            return None;
        }
        Some(
            (0..self.cascade.borrow().k())
                .map(|i| {
                    self.values[i]
                        .clone()
                        .expect("complete decoder knows all source packets")
                })
                .collect(),
        )
    }

    /// Set a packet value and run peeling to a fixed point.
    fn propagate(&mut self, index: usize, value: S) -> Result<()> {
        let mut worklist = vec![(index, value)];
        while let Some((g, v)) = worklist.pop() {
            if self.values[g].is_some() {
                continue;
            }
            self.mark_known(g, v, &mut worklist)?;
        }
        Ok(())
    }

    /// Record a newly-known packet and push any recoveries it enables.
    fn mark_known(&mut self, g: usize, value: S, worklist: &mut Vec<(usize, S)>) -> Result<()> {
        let role = self.cascade.borrow().role(g);
        let num_levels = self.cascade.borrow().num_levels();
        self.values[g] = Some(value);
        self.known += 1;
        match role {
            PacketRole::Level { level, pos } => {
                if level == 0 {
                    self.source_known += 1;
                }
                if level + 1 == num_levels {
                    self.rs_block_known += 1;
                }
                // As a left node of the graph above (if any): update the check
                // accumulators of its neighbours.
                if level + 1 < num_levels {
                    self.update_checks_above(level, pos, g, worklist);
                }
                // As a check node of the graph below (levels >= 1): it may now
                // resolve its one unknown neighbour.
                if level >= 1 {
                    self.try_resolve_check(g, worklist);
                }
            }
            PacketRole::RsCheck { .. } => {
                self.rs_block_known += 1;
            }
        }
        // The final level becomes recoverable as soon as k of its block's
        // packets are known.
        if !self.rs_done && self.rs_block_known >= self.cascade.borrow().final_code().k() {
            self.try_final_level(worklist)?;
        }
        Ok(())
    }

    /// Left node `(level, pos)` just became known: update every check node of
    /// the graph between `level` and `level + 1`.
    fn update_checks_above(
        &mut self,
        level: usize,
        pos: usize,
        g: usize,
        worklist: &mut Vec<(usize, S)>,
    ) {
        // Clone the cascade handle (a pointer copy / `Arc` bump) so the graph
        // borrow is independent of `self` while the decoder state mutates.
        let cascade = self.cascade.clone();
        let cascade: &Cascade = cascade.borrow();
        let graph = &cascade.graphs()[level];
        let check_offset = cascade.level_offset(level + 1);
        for &c in graph.left_neighbors(pos) {
            let check_global = check_offset + c as usize;
            let ci = check_global - self.check_base;
            self.unknown_left[ci] -= 1;
            // Borrow the value out of the store per neighbour (disjoint
            // fields, so no clone); it is only cloned to seed a check node's
            // first accumulator, which must own its running XOR.
            let value = self.values[g].as_ref().expect("value was just set");
            match &mut self.acc[ci] {
                Some(acc) => acc.xor(value),
                None => self.acc[ci] = Some(value.clone()),
            }
            if self.unknown_left[ci] == 0 {
                // Every neighbour known: the check packet itself can be
                // recomputed if it has not arrived (useful both for upward
                // recovery and for feeding the final MDS block).  The
                // accumulator has served its purpose, so move it out instead
                // of cloning — `unknown_left` never increments, making this
                // branch unreachable twice for the same check node.
                if self.values[check_global].is_none() {
                    if let Some(acc) = self.acc[ci].take() {
                        worklist.push((check_global, acc));
                    }
                }
            } else if self.unknown_left[ci] == 1 && self.values[check_global].is_some() {
                self.recover_single_neighbor(check_global, worklist);
            }
        }
    }

    /// Check node `check_global` is known; if exactly one of its neighbours is
    /// unknown, recover it.
    fn try_resolve_check(&mut self, check_global: usize, worklist: &mut Vec<(usize, S)>) {
        let ci = check_global - self.check_base;
        if ci < self.check_count && self.unknown_left[ci] == 1 {
            self.recover_single_neighbor(check_global, worklist);
        }
    }

    /// Recover the single unknown neighbour of a known check node.
    fn recover_single_neighbor(&mut self, check_global: usize, worklist: &mut Vec<(usize, S)>) {
        let cascade = self.cascade.clone();
        let cascade: &Cascade = cascade.borrow();
        let PacketRole::Level { level, pos } = cascade.role(check_global) else {
            unreachable!("check nodes are level packets");
        };
        debug_assert!(level >= 1);
        let graph = &cascade.graphs()[level - 1];
        let left_offset = cascade.level_offset(level - 1);
        let missing = graph
            .check_neighbors(pos)
            .iter()
            .map(|&l| left_offset + l as usize)
            .find(|&lg| self.values[lg].is_none());
        let Some(missing_global) = missing else {
            return;
        };
        let ci = check_global - self.check_base;
        let mut recovered = self.values[check_global]
            .clone()
            .expect("check value is known");
        if let Some(acc) = &self.acc[ci] {
            recovered.xor(acc);
        }
        worklist.push((missing_global, recovered));
    }

    /// Attempt to recover the entire final cascade level through the MDS code.
    fn try_final_level(&mut self, worklist: &mut Vec<(usize, S)>) -> Result<()> {
        let cascade = self.cascade.clone();
        let cascade: &Cascade = cascade.borrow();
        let last_level = cascade.num_levels() - 1;
        let level_offset = cascade.level_offset(last_level);
        let level_size = cascade.level_sizes()[last_level];
        let rs_offset = cascade.rs_offset();
        let rs_checks = cascade.rs_checks();

        // Borrow the known packets straight out of the value store: recovery
        // attempts (which can fire repeatedly near the completion threshold)
        // never clone payloads.
        let mut received: Vec<(usize, &S)> = Vec::with_capacity(self.rs_block_known);
        for i in 0..level_size {
            if let Some(v) = &self.values[level_offset + i] {
                received.push((i, v));
            }
        }
        for j in 0..rs_checks {
            if let Some(v) = &self.values[rs_offset + j] {
                received.push((level_size + j, v));
            }
        }
        if let Some(level) = S::recover_final_level(cascade.final_code(), &received)? {
            self.rs_done = true;
            for (i, v) in level.into_iter().enumerate() {
                let g = level_offset + i;
                if self.values[g].is_none() {
                    worklist.push((g, v));
                }
            }
        }
        Ok(())
    }
}

/// Decoder that carries real packet payloads, borrowing its cascade.
pub type PayloadDecoder<'a> = PeelingDecoder<Vec<u8>, &'a Cascade>;

/// Index-only decoder used by the large-scale reception simulations.
pub type SymbolicDecoder<'a> = PeelingDecoder<Mark, &'a Cascade>;

/// Payload decoder that *owns* (a share of) its cascade, so it can outlive
/// the [`crate::TornadoCode`] borrow that created it.  This is the decoder a
/// long-lived protocol session holds across statistical decode attempts: the
/// session feeds each received packet exactly once, instead of re-feeding its
/// whole buffer into a fresh borrowing decoder per attempt.
pub type OwnedPayloadDecoder = PeelingDecoder<Vec<u8>, Arc<Cascade>>;

/// Index-only decoder that owns a share of its cascade (see
/// [`OwnedPayloadDecoder`]).
pub type OwnedSymbolicDecoder = PeelingDecoder<Mark, Arc<Cascade>>;

impl<C: Borrow<Cascade> + Clone> PeelingDecoder<Mark, C> {
    /// Feed packet indices (no payloads) until the source is recoverable or
    /// the iterator is exhausted; returns the total number of packets consumed
    /// from the iterator (the paper's reception count — every packet pulled
    /// from the channel counts, whether or not it turned out to be useful) if
    /// decoding completed.
    ///
    /// This is the primitive behind the overhead-distribution experiment
    /// (Figure 2) and the receiver simulations (Figures 4–6).
    pub fn run_until_complete<I>(&mut self, indices: I) -> Option<usize>
    where
        I: IntoIterator<Item = usize>,
    {
        for idx in indices {
            match self.add_packet(idx, Mark) {
                Ok(AddOutcome::Complete) => return Some(self.received_total()),
                Ok(_) => {}
                Err(_) => return None,
            }
        }
        if self.is_complete() {
            Some(self.received_total())
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cascade::Cascade;
    use crate::profile::{TornadoProfile, TORNADO_A, TORNADO_B};
    use proptest::prelude::*;
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    fn encode_all(cascade: &Cascade, source: &[Vec<u8>]) -> Vec<Vec<u8>> {
        crate::encode::encode(cascade, source).unwrap()
    }

    fn random_source(k: usize, len: usize, seed: u64) -> Vec<Vec<u8>> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (0..k)
            .map(|_| (0..len).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn decodes_with_all_packets_received() {
        let cascade = Cascade::build(120, TORNADO_A, 1).unwrap();
        let src = random_source(120, 32, 1);
        let enc = encode_all(&cascade, &src);
        let mut dec = PayloadDecoder::new(&cascade);
        for (i, p) in enc.iter().enumerate() {
            dec.add_packet(i, p.clone()).unwrap();
        }
        assert!(dec.is_complete());
        assert_eq!(dec.source().unwrap(), src);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "large-k statistical sweep; intractable under the Miri interpreter"
    )]
    fn decodes_from_random_subset_with_overhead() {
        let k = 1000;
        let cascade = Cascade::build(k, TORNADO_A, 2).unwrap();
        let src = random_source(k, 64, 2);
        let enc = encode_all(&cascade, &src);
        let trials = 8;
        let mut total_overhead = 0.0;
        for t in 0..trials {
            let mut order: Vec<usize> = (0..cascade.n()).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(3 + t);
            order.shuffle(&mut rng);
            let mut dec = PayloadDecoder::new(&cascade);
            let mut used = None;
            for (count, &i) in order.iter().enumerate() {
                if dec.add_packet(i, enc[i].clone()).unwrap() == AddOutcome::Complete {
                    used = Some(count + 1);
                    break;
                }
            }
            let used = used.expect("the full encoding must always decode");
            assert_eq!(dec.source().unwrap(), src);
            // Must finish well before the whole encoding has been consumed.
            assert!(
                used < cascade.n(),
                "needed {used} of {} packets",
                cascade.n()
            );
            total_overhead += used as f64 / k as f64 - 1.0;
        }
        // Individual trials fluctuate at this small k, but the average must
        // stay close to the calibrated band (≈ 7 % at k = 1000).
        let mean = total_overhead / trials as f64;
        assert!(mean < 0.2, "unreasonable mean overhead {mean}");
    }

    #[test]
    fn duplicates_are_reported_and_ignored() {
        let cascade = Cascade::build(80, TORNADO_A, 4).unwrap();
        let src = random_source(80, 16, 4);
        let enc = encode_all(&cascade, &src);
        let mut dec = PayloadDecoder::new(&cascade);
        assert_eq!(
            dec.add_packet(5, enc[5].clone()).unwrap(),
            AddOutcome::Accepted
        );
        assert_eq!(
            dec.add_packet(5, enc[5].clone()).unwrap(),
            AddOutcome::Duplicate
        );
        assert_eq!(dec.received_distinct(), 1);
        assert_eq!(dec.received_total(), 2);
    }

    #[test]
    fn add_packet_ref_matches_add_packet() {
        let cascade = Cascade::build(300, TORNADO_A, 12).unwrap();
        let src = random_source(300, 24, 12);
        let enc = encode_all(&cascade, &src);
        let mut by_value = PayloadDecoder::new(&cascade);
        let mut by_ref = PayloadDecoder::new(&cascade);
        for (i, p) in enc.iter().enumerate().rev() {
            let a = by_value.add_packet(i, p.clone()).unwrap();
            let b = by_ref.add_packet_ref(i, p).unwrap();
            assert_eq!(a, b, "packet {i}");
            // Duplicates must also agree (and stay allocation-free by ref).
            assert_eq!(
                by_value.add_packet(i, p.clone()).unwrap(),
                by_ref.add_packet_ref(i, p).unwrap()
            );
            if a == AddOutcome::Complete {
                break;
            }
        }
        assert_eq!(by_value.is_complete(), by_ref.is_complete());
        assert_eq!(by_value.source(), by_ref.source());
        assert_eq!(by_value.received_total(), by_ref.received_total());
    }

    #[test]
    fn out_of_range_index_is_an_error() {
        let cascade = Cascade::build(10, TORNADO_A, 5).unwrap();
        let mut dec = PayloadDecoder::new(&cascade);
        assert!(dec.add_packet(999, vec![0u8; 4]).is_err());
    }

    #[test]
    fn source_is_none_until_complete() {
        let cascade = Cascade::build(50, TORNADO_A, 6).unwrap();
        let src = random_source(50, 8, 6);
        let enc = encode_all(&cascade, &src);
        let mut dec = PayloadDecoder::new(&cascade);
        dec.add_packet(0, enc[0].clone()).unwrap();
        assert!(dec.source().is_none());
        assert!(!dec.is_complete());
    }

    #[test]
    fn statistical_mode_batch_decode() {
        // The client mode chosen in Section 7.2: buffer a batch, decode once.
        let k = 500;
        let cascade = Cascade::build(k, TORNADO_A, 7).unwrap();
        let src = random_source(k, 48, 7);
        let enc = encode_all(&cascade, &src);
        let mut order: Vec<usize> = (0..cascade.n()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        order.shuffle(&mut rng);
        // Take 1.5k packets in one batch — comfortably above the expected
        // overhead at this small k, so a single batch must always suffice.
        let batch: Vec<(usize, Vec<u8>)> = order[..(k * 3 / 2)]
            .iter()
            .map(|&i| (i, enc[i].clone()))
            .collect();
        let mut dec = PayloadDecoder::new(&cascade);
        assert!(dec.add_packets(batch).unwrap());
        assert_eq!(dec.source().unwrap(), src);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "large-k statistical sweep; intractable under the Miri interpreter"
    )]
    fn symbolic_and_payload_decoders_agree() {
        let k = 800;
        let cascade = Cascade::build(k, TORNADO_A, 9).unwrap();
        let src = random_source(k, 24, 9);
        let enc = encode_all(&cascade, &src);
        for trial in 0..5u64 {
            let mut order: Vec<usize> = (0..cascade.n()).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(100 + trial);
            order.shuffle(&mut rng);
            let mut sym = SymbolicDecoder::new(&cascade);
            let mut pay = PayloadDecoder::new(&cascade);
            for &i in &order {
                let s = sym.add_packet(i, Mark).unwrap();
                let p = pay.add_packet(i, enc[i].clone()).unwrap();
                assert_eq!(s, p, "decoders disagree at packet {i} of trial {trial}");
                if s == AddOutcome::Complete {
                    break;
                }
            }
            assert_eq!(sym.is_complete(), pay.is_complete());
            assert_eq!(sym.received_distinct(), pay.received_distinct());
            assert_eq!(pay.source().unwrap(), src);
        }
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "large-k statistical sweep; intractable under the Miri interpreter"
    )]
    fn both_profiles_stay_in_their_calibrated_overhead_band() {
        // Guards the calibration recorded in EXPERIMENTS.md: at a 8 MB-class
        // file both profiles must keep the mean reception overhead near 10 %
        // and never blow past 25 % (the long stopping-set tails that the
        // low-degree conditioning in `graph.rs` exists to prevent).
        let k = 8264;
        let trials = 10u64;
        for profile in [TORNADO_A, TORNADO_B] {
            let cascade = Cascade::build(k, profile, 10).unwrap();
            let mut total = 0.0f64;
            let mut worst = 0.0f64;
            for t in 0..trials {
                let mut order: Vec<usize> = (0..cascade.n()).collect();
                let mut rng = ChaCha8Rng::seed_from_u64(1000 + t);
                order.shuffle(&mut rng);
                let mut dec = SymbolicDecoder::new(&cascade);
                let used = dec
                    .run_until_complete(order)
                    .expect("full encoding decodes");
                let eps = used as f64 / k as f64 - 1.0;
                total += eps;
                worst = worst.max(eps);
            }
            let mean = total / trials as f64;
            assert!(mean < 0.15, "{}: mean overhead {mean}", profile.name);
            assert!(worst < 0.25, "{}: worst overhead {worst}", profile.name);
        }
    }

    #[test]
    fn small_pure_rs_cascade_has_zero_overhead() {
        // Below the cascade threshold the code is a single MDS block, so any
        // k packets decode with zero overhead.
        let k = 60;
        let cascade = Cascade::build(k, TORNADO_A, 11).unwrap();
        assert_eq!(cascade.num_levels(), 1);
        let src = random_source(k, 20, 11);
        let enc = encode_all(&cascade, &src);
        let rx: Vec<usize> = (k..2 * k).collect();
        let mut dec = PayloadDecoder::new(&cascade);
        for i in rx {
            dec.add_packet(i, enc[i].clone()).unwrap();
        }
        assert!(dec.is_complete());
        assert_eq!(dec.source().unwrap(), src);
        assert_eq!(dec.received_distinct(), k);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Any random reception order of the full encoding decodes, and the
        /// payload decoder reproduces the source exactly.
        #[test]
        fn prop_random_orders_decode(
            k in 20usize..400,
            len in 1usize..32,
            seed in any::<u64>(),
        ) {
            let profile = TornadoProfile::tornado_a();
            let cascade = Cascade::build(k, profile, seed).unwrap();
            let src = random_source(k, len * 2, seed ^ 1); // even length for GF(2^16) safety
            let enc = encode_all(&cascade, &src);
            let mut order: Vec<usize> = (0..cascade.n()).collect();
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 2);
            order.shuffle(&mut rng);
            let mut dec = PayloadDecoder::new(&cascade);
            for &i in &order {
                if dec.add_packet(i, enc[i].clone()).unwrap() == AddOutcome::Complete {
                    break;
                }
            }
            prop_assert!(dec.is_complete());
            prop_assert_eq!(dec.source().unwrap(), src);
        }
    }
}
