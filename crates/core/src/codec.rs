//! The top-level [`TornadoCode`] type: the public face of the paper's primary
//! contribution.
//!
//! A `TornadoCode` bundles a [`Cascade`] with convenience methods for
//! encoding, batch decoding, incremental decoding and overhead measurement.
//! Construction is deterministic in `(k, profile, seed)`, which is all a
//! sender needs to communicate out of band (in the prototype protocol this
//! travels on the UDP control channel together with the file length).
//!
//! # Example
//!
//! ```
//! use df_core::{TornadoCode, PayloadDecoder, AddOutcome};
//!
//! // 1 000 source packets of 64 bytes, Tornado A profile.
//! let code = TornadoCode::new_a(1_000, 42).unwrap();
//! let source: Vec<Vec<u8>> = (0..1_000u32).map(|i| i.to_le_bytes().repeat(16)).collect();
//! let encoding = code.encode(&source).unwrap();
//!
//! // Feed packets in an arbitrary order; decoding completes after roughly
//! // (1 + ε)·k distinct packets with ε ≈ 0.05.
//! let mut decoder = code.decoder();
//! let mut done = false;
//! for (i, pkt) in encoding.iter().enumerate().rev() {
//!     if decoder.add_packet(i, pkt.clone()).unwrap() == AddOutcome::Complete {
//!         done = true;
//!         break;
//!     }
//! }
//! assert!(done);
//! assert_eq!(decoder.source().unwrap(), source);
//! ```

use crate::cascade::{Cascade, FinalCode};
use crate::decode::{OwnedPayloadDecoder, PayloadDecoder, SymbolicDecoder};
use crate::error::Result;
use crate::profile::{TornadoProfile, TORNADO_A, TORNADO_B};
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// A Tornado erasure code with fixed `k`, stretch factor and graph structure.
///
/// The cascade is held behind an [`Arc`], so cloning a `TornadoCode` — or
/// creating an [`OwnedPayloadDecoder`] with [`TornadoCode::owned_decoder`] —
/// shares the graph structure instead of copying it.
#[derive(Debug, Clone)]
pub struct TornadoCode {
    cascade: Arc<Cascade>,
}

impl TornadoCode {
    /// Build a code from an explicit profile.
    ///
    /// # Errors
    ///
    /// See [`Cascade::build`].
    pub fn with_profile(k: usize, profile: TornadoProfile, seed: u64) -> Result<Self> {
        Ok(TornadoCode {
            cascade: Arc::new(Cascade::build(k, profile, seed)?),
        })
    }

    /// Build a Tornado A code (fast decoding, ≈ 5 % average overhead).
    ///
    /// # Errors
    ///
    /// See [`Cascade::build`].
    pub fn new_a(k: usize, seed: u64) -> Result<Self> {
        Self::with_profile(k, TORNADO_A, seed)
    }

    /// Build a Tornado B code (denser graphs, ≈ 3 % average overhead).
    ///
    /// # Errors
    ///
    /// See [`Cascade::build`].
    pub fn new_b(k: usize, seed: u64) -> Result<Self> {
        Self::with_profile(k, TORNADO_B, seed)
    }

    /// Number of source packets.
    pub fn k(&self) -> usize {
        self.cascade.k()
    }

    /// Total number of encoding packets (`n = c·k`).
    pub fn n(&self) -> usize {
        self.cascade.n()
    }

    /// Stretch factor `n / k`.
    pub fn stretch_factor(&self) -> f64 {
        self.n() as f64 / self.k() as f64
    }

    /// The underlying cascade structure.
    pub fn cascade(&self) -> &Cascade {
        &self.cascade
    }

    /// A shared handle to the cascade, for decoders (or sessions) that must
    /// outlive this `TornadoCode` value.
    pub fn shared_cascade(&self) -> Arc<Cascade> {
        Arc::clone(&self.cascade)
    }

    /// The exact payload length a well-formed encoding packet `index` carries
    /// when the source was split into `packet_size`-byte packets.
    ///
    /// This is `packet_size` for every packet except one corner: a GF(2^16)
    /// final code with an *odd* `packet_size` pads its check packets by two
    /// bytes (one padding byte to reach 16-bit alignment plus one odd-length
    /// marker byte — see [`FinalCode`]).  Protocol layers should validate
    /// received payload lengths against this instead of re-deriving the
    /// codec's padding rules.
    ///
    /// # Panics
    ///
    /// Panics if `index >= n`.
    pub fn expected_payload_len(&self, index: usize, packet_size: usize) -> usize {
        assert!(
            index < self.n(),
            "packet index {index} out of range for n = {}",
            self.n()
        );
        if packet_size % 2 == 1
            && index >= self.cascade.rs_offset()
            && matches!(self.cascade.final_code(), FinalCode::Large(_))
        {
            packet_size + 2
        } else {
            packet_size
        }
    }

    /// The profile this code was built from.
    pub fn profile(&self) -> &TornadoProfile {
        self.cascade.profile()
    }

    /// Encode `k` source packets into `n` encoding packets (systematic).
    ///
    /// # Errors
    ///
    /// See [`crate::encode::encode`].
    pub fn encode(&self, source: &[Vec<u8>]) -> Result<Vec<Vec<u8>>> {
        crate::encode::encode(&self.cascade, source)
    }

    /// Create an incremental payload decoder borrowing this code's cascade.
    pub fn decoder(&self) -> PayloadDecoder<'_> {
        PayloadDecoder::new(self.cascade())
    }

    /// Create an incremental payload decoder that shares ownership of the
    /// cascade, so it is not tied to this `TornadoCode`'s lifetime.
    pub fn owned_decoder(&self) -> OwnedPayloadDecoder {
        OwnedPayloadDecoder::new(self.shared_cascade())
    }

    /// Create an index-only decoder for reception simulations.
    pub fn symbolic_decoder(&self) -> SymbolicDecoder<'_> {
        SymbolicDecoder::new(self.cascade())
    }

    /// Batch decode: reconstruct the source from `(index, payload)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`crate::TornadoError::NeedMorePackets`] if the supplied set is
    /// insufficient (the caller should gather more packets and retry — the
    /// "statistical" client mode of Section 7.2), or other errors for
    /// malformed input.
    pub fn decode(&self, received: &[(usize, Vec<u8>)]) -> Result<Vec<Vec<u8>>> {
        let mut decoder = self.decoder();
        for (idx, payload) in received {
            // By reference: only packets that advance decoding are cloned.
            decoder.add_packet_ref(*idx, payload)?;
        }
        match decoder.source() {
            Some(src) => Ok(src),
            None => Err(crate::TornadoError::NeedMorePackets {
                received: decoder.received_distinct(),
                k: self.k(),
            }),
        }
    }

    /// Run one reception-overhead trial: present the encoding packets in a
    /// uniformly random order and report the overhead `ε` at which the source
    /// became decodable (the quantity plotted in Figure 2 of the paper).
    ///
    /// The overhead counts every packet pulled from the stream until the
    /// decoder completed, exactly as a client listening to a carousel would
    /// experience it.
    pub fn overhead_trial<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut order: Vec<usize> = (0..self.n()).collect();
        order.shuffle(rng);
        let mut dec = self.symbolic_decoder();
        let needed = dec
            .run_until_complete(order)
            .expect("the complete encoding always decodes");
        needed as f64 / self.k() as f64 - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn profile_constructors() {
        let a = TornadoCode::new_a(500, 1).unwrap();
        let b = TornadoCode::new_b(500, 1).unwrap();
        assert_eq!(a.profile().name, "tornado-a");
        assert_eq!(b.profile().name, "tornado-b");
        assert_eq!(a.k(), 500);
        assert_eq!(a.n(), 1000);
        assert!((a.stretch_factor() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn batch_decode_reports_insufficient_packets() {
        let code = TornadoCode::new_a(200, 2).unwrap();
        let src: Vec<Vec<u8>> = (0..200u8).map(|i| vec![i; 10]).collect();
        let enc = code.encode(&src).unwrap();
        // Far too few packets.
        let few: Vec<(usize, Vec<u8>)> = (0..100).map(|i| (i, enc[i].clone())).collect();
        assert!(matches!(
            code.decode(&few),
            Err(crate::TornadoError::NeedMorePackets { .. })
        ));
        // The whole encoding always decodes.
        let all: Vec<(usize, Vec<u8>)> = enc.iter().cloned().enumerate().collect();
        assert_eq!(code.decode(&all).unwrap(), src);
    }

    #[test]
    #[cfg_attr(
        miri,
        ignore = "large-k statistical sweep; intractable under the Miri interpreter"
    )]
    fn overhead_trials_are_reasonable() {
        let code = TornadoCode::new_a(1000, 3).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..5 {
            let eps = code.overhead_trial(&mut rng);
            assert!(eps >= 0.0);
            assert!(eps < 0.3, "overhead {eps} far outside the expected band");
        }
    }

    #[test]
    fn owned_decoder_outlives_the_code_and_matches_borrowed() {
        let code = TornadoCode::new_a(300, 4).unwrap();
        let src: Vec<Vec<u8>> = (0..300u16).map(|i| i.to_le_bytes().repeat(8)).collect();
        let enc = code.encode(&src).unwrap();
        let mut owned = code.owned_decoder();
        let mut borrowed = code.decoder();
        for (i, p) in enc.iter().enumerate().rev() {
            let a = owned.add_packet_ref(i, p).unwrap();
            let b = borrowed.add_packet_ref(i, p).unwrap();
            assert_eq!(a, b, "packet {i}");
            if a == crate::AddOutcome::Complete {
                break;
            }
        }
        // The owned decoder keeps working after the code itself is gone.
        drop(borrowed);
        drop(code);
        assert!(owned.is_complete());
        assert_eq!(owned.source().unwrap(), src);
    }

    #[test]
    fn expected_payload_len_covers_the_odd_gf16_corner() {
        // Tornado B at this size has a GF(2^16) final block; with an odd
        // packet size its check packets carry two extra bytes.
        let b = TornadoCode::new_b(4000, 7).unwrap();
        assert!(matches!(
            b.cascade().final_code(),
            crate::FinalCode::Large(_)
        ));
        let rs = b.cascade().rs_offset();
        assert_eq!(b.expected_payload_len(0, 499), 499);
        assert_eq!(b.expected_payload_len(rs - 1, 499), 499);
        assert_eq!(b.expected_payload_len(rs, 499), 501);
        assert_eq!(b.expected_payload_len(b.n() - 1, 499), 501);
        // Even packet sizes never pad.
        assert_eq!(b.expected_payload_len(rs, 500), 500);
        // Tornado A keeps a GF(2^8) final block: no padding even when odd.
        let a = TornadoCode::new_a(4000, 7).unwrap();
        assert!(matches!(
            a.cascade().final_code(),
            crate::FinalCode::Small(_)
        ));
        assert_eq!(a.expected_payload_len(a.n() - 1, 499), 499);
    }

    #[test]
    fn deterministic_construction() {
        let a = TornadoCode::new_a(300, 9).unwrap();
        let b = TornadoCode::new_a(300, 9).unwrap();
        let src: Vec<Vec<u8>> = (0..300u16).map(|i| i.to_le_bytes().to_vec()).collect();
        assert_eq!(a.encode(&src).unwrap(), b.encode(&src).unwrap());
    }
}
