//! Degree-distribution calibration harness.
//!
//! The paper does not publish the exact Tornado A / Tornado B graph
//! parameters, only their measured reception-overhead statistics (Section 5.2
//! and Figure 2).  This binary sweeps candidate constructions and reports the
//! mean / max / standard deviation of the reception overhead measured with the
//! symbolic decoder, which is how the profile constants in `profile.rs` were
//! chosen.  Results for the selected profiles are recorded in EXPERIMENTS.md.
//!
//! Run with: `cargo run --release -p df-core --example calibrate [k] [trials]`

use df_core::{
    CheckSide, DegreeDistribution, OverheadStats, TornadoCode, TornadoProfile, TORNADO_A, TORNADO_B,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn measure(profile: TornadoProfile, k: usize, trials: usize) -> OverheadStats {
    let code = TornadoCode::with_profile(k, profile, 0xd1617a1).expect("profile builds");
    let mut rng = ChaCha8Rng::seed_from_u64(0xca11b);
    let samples: Vec<f64> = (0..trials).map(|_| code.overhead_trial(&mut rng)).collect();
    OverheadStats::from_samples(samples)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let k: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(2000);
    let trials: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);

    let mut candidates: Vec<(String, TornadoProfile)> = vec![
        ("tornado-a (current)".to_string(), TORNADO_A),
        ("tornado-b (current)".to_string(), TORNADO_B),
    ];
    for d in [20usize, 30, 60, 100] {
        for (side, side_name) in [
            (CheckSide::Poisson, "poisson"),
            (CheckSide::Regular, "regular"),
        ] {
            candidates.push((
                format!("heavy-tail D={d} / {side_name}"),
                TornadoProfile {
                    name: "cand-ht",
                    distribution: DegreeDistribution::heavy_tail(d),
                    check_side: side,
                    stretch_factor: 2.0,
                    final_level_threshold: 400,
                    final_level_divisor: 8,
                    prefer_gf8_final: true,
                },
            ));
        }
    }
    for a in [6usize, 8, 12, 16] {
        for dmax in [60usize, 200] {
            candidates.push((
                format!("check-concentrated a={a} D={dmax} / regular"),
                TornadoProfile {
                    name: "cand-cc",
                    distribution: DegreeDistribution::check_concentrated(a, dmax),
                    check_side: CheckSide::Regular,
                    stretch_factor: 2.0,
                    final_level_threshold: 400,
                    final_level_divisor: 8,
                    prefer_gf8_final: true,
                },
            ));
        }
    }
    candidates.push((
        "regular degree 3 (ablation)".to_string(),
        TornadoProfile {
            name: "cand-reg3",
            distribution: DegreeDistribution::Regular { degree: 3 },
            check_side: CheckSide::Regular,
            stretch_factor: 2.0,
            final_level_threshold: 400,
            final_level_divisor: 8,
            prefer_gf8_final: true,
        },
    ));

    println!("k = {k}, trials = {trials}");
    println!(
        "{:<45} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "construction", "avg-deg", "mean", "std", "max", "p99"
    );
    for (name, profile) in candidates {
        let stats = measure(profile, k, trials);
        println!(
            "{:<45} {:>8.2} {:>8.4} {:>8.4} {:>8.4} {:>9.4}",
            name,
            profile.average_degree(),
            stats.mean(),
            stats.std_dev(),
            stats.max(),
            stats.quantile(0.99),
        );
    }
}
