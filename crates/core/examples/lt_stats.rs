//! Scratch calibration harness for the rateless LT/Raptor overhead numbers.
//!
//! Not part of the test suite; run with
//! `cargo run -p df-core --release --example lt_stats`.

use df_core::rateless::{LtDecoder, LtEncoder};
use df_core::{Mark, RaptorCode};

fn lt_trial(k: usize, c: f64, delta: f64, seed: u64) -> (f64, usize) {
    let enc = LtEncoder::new(k, c, delta, seed).unwrap();
    let mut dec = LtDecoder::<Mark>::new(enc);
    let mut sent = 0u64;
    let mut max_missing_at_stall = 0usize;
    while !dec.is_complete() {
        dec.add_symbol(seed.wrapping_mul(1_000_003).wrapping_add(sent), Mark);
        sent += 1;
        if sent >= k as u64 {
            let missing = dec.count() - dec.known();
            if missing > 0 {
                max_missing_at_stall = missing;
            }
        }
        assert!(sent < 4 * k as u64 + 1000);
    }
    (sent as f64 / k as f64, max_missing_at_stall)
}

fn raptor_table_trial(k: usize, stretch: f64, seed: u64) -> f64 {
    let mut profile = df_core::RAPTOR_PRECODE;
    profile.stretch_factor = stretch;
    let code = RaptorCode::with_profile(k, profile, seed).unwrap();
    let mut dec = code.symbolic_decoder();
    let mut sent = 0u64;
    while !dec.is_complete() {
        dec.add_mark(seed.wrapping_mul(1_000_003).wrapping_add(sent))
            .unwrap();
        sent += 1;
        assert!(sent < 4 * k as u64 + 1000);
    }
    sent as f64 / k as f64
}

fn raptor_soliton_trial(k: usize, c: f64, delta: f64, stretch: f64, seed: u64) -> f64 {
    let mut profile = df_core::RAPTOR_PRECODE;
    profile.stretch_factor = stretch;
    let code = RaptorCode::with_profile_and_soliton(k, profile, c, delta, seed).unwrap();
    let mut dec = code.symbolic_decoder();
    let mut sent = 0u64;
    while !dec.is_complete() {
        dec.add_mark(seed.wrapping_mul(1_000_003).wrapping_add(sent))
            .unwrap();
        sent += 1;
        assert!(sent < 4 * k as u64 + 1000);
    }
    sent as f64 / k as f64
}

fn main() {
    let k = 1000;
    println!("== plain LT, k = {k} ==");
    for (c, delta) in [
        (0.03, 0.5),
        (0.05, 0.5),
        (0.1, 0.5),
        (0.03, 0.1),
        (0.1, 0.05),
    ] {
        let mut ovs: Vec<f64> = Vec::new();
        let mut stall_sum = 0usize;
        for t in 0..100u64 {
            let (ov, stall) = lt_trial(k, c, delta, 0xACCE_5500 + t);
            ovs.push(ov);
            stall_sum += stall;
        }
        ovs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = ovs.iter().sum::<f64>() / ovs.len() as f64;
        let within = ovs.iter().filter(|&&o| o <= 1.15).count();
        println!(
            "c={c:<5} d={delta:<5} mean={mean:.4} p50={:.4} p95={:.4} max={:.4} within1.15={within}/100 avg-late-missing={}",
            ovs[49], ovs[94], ovs[99], stall_sum / 100
        );
    }
    println!("== raptor (fixed table), k = {k} ==");
    for stretch in [1.02, 1.03, 1.05, 1.08] {
        let mut ovs: Vec<f64> = Vec::new();
        for t in 0..100u64 {
            ovs.push(raptor_table_trial(k, stretch, 0xBEEF_0000 + t));
        }
        ovs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = ovs.iter().sum::<f64>() / ovs.len() as f64;
        println!(
            "stretch={stretch:<5} mean={mean:.4} p50={:.4} p95={:.4} max={:.4}",
            ovs[49], ovs[94], ovs[99]
        );
    }
    println!("== raptor (soliton layer, for comparison), k = {k} ==");
    for (c, delta, stretch) in [(0.01, 0.5, 1.05), (0.03, 0.5, 1.05)] {
        let mut ovs: Vec<f64> = Vec::new();
        for t in 0..40u64 {
            ovs.push(raptor_soliton_trial(k, c, delta, stretch, 0xBEEF_0000 + t));
        }
        ovs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = ovs.iter().sum::<f64>() / ovs.len() as f64;
        println!(
            "c={c:<6} d={delta:<5} stretch={stretch:<5} mean={mean:.4} p50={:.4} max={:.4}",
            ovs[19], ovs[39]
        );
    }
}
