//! # digital-fountain
//!
//! An umbrella crate re-exporting the whole reproduction of *"A Digital
//! Fountain Approach to Reliable Distribution of Bulk Data"* (Byers, Luby,
//! Mitzenmacher, Rege — SIGCOMM 1998):
//!
//! * [`core`] (`df-core`) — Tornado codes and the digital-fountain / carousel
//!   abstraction (the paper's primary contribution).
//! * [`rs`] (`df-rs`) and [`gf`] (`df-gf`) — the Reed–Solomon baselines and
//!   their Galois-field substrate.
//! * [`sim`] (`df-sim`) — loss models, synthetic MBone-like traces, the
//!   interleaved baseline and the reception-efficiency experiments.
//! * [`mcast`] (`df-mcast`) — layered multicast scheduling (One Level
//!   Property) and receiver-driven congestion control.
//! * [`proto`] (`df-proto`) — the prototype bulk-data distribution protocol.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and the
//! `df-bench` crate's `repro` binary for regenerating every table and figure
//! of the paper's evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use df_core as core;
pub use df_gf as gf;
pub use df_mcast as mcast;
pub use df_proto as proto;
pub use df_rs as rs;
pub use df_sim as sim;
