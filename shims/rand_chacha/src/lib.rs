//! Offline shim for `rand_chacha`: a genuine ChaCha8 stream cipher used as a
//! deterministic RNG.
//!
//! The workspace builds without network access (see `shims/README.md`), so
//! this crate provides the one type the code uses — [`ChaCha8Rng`] — backed by
//! a faithful ChaCha8 core (Bernstein's quarter-round over a 16-word state,
//! 8 rounds).  Seeding expands a 64-bit seed to a 256-bit key with SplitMix64,
//! matching the *shape* of `SeedableRng::seed_from_u64` upstream; the streams
//! are not bit-identical to upstream `rand_chacha` (nothing in the workspace
//! depends on that — all experiments are calibrated against these shims).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, exposed as a random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key (words 4..12 of the ChaCha state).
    key: [u32; 8],
    /// 64-bit block counter (words 12..14) — the nonce words stay zero.
    counter: u64,
    /// Current 64-byte keystream block.
    block: [u32; 16],
    /// Next unread 32-bit word within `block` (16 = exhausted).
    cursor: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14], state[15]: nonce, fixed at zero.
        let input = state;
        for _ in 0..4 {
            // Two rounds per iteration: one column round, one diagonal round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.cursor = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut key = [0u32; 8];
        for pair in key.chunks_exact_mut(2) {
            // SplitMix64 expansion, one u64 per pair of key words.
            let mut z = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            sm = z;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            pair[0] = z as u32;
            pair[1] = (z >> 32) as u32;
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn keystream_blocks_differ() {
        // 16 words per block: consecutive blocks must not repeat.
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let b1: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let b2: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(b1, b2);
    }

    #[test]
    fn bytes_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut counts = [0usize; 256];
        let n = 1 << 18;
        for _ in 0..n / 4 {
            for b in rng.next_u32().to_le_bytes() {
                counts[b as usize] += 1;
            }
        }
        let expected = n / 256;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.2,
                "byte {b} count {c}, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let _ = rng.gen::<u64>();
        let mut fork = rng.clone();
        assert_eq!(rng.next_u64(), fork.next_u64());
    }
}
