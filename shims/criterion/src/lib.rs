//! Offline micro-benchmark harness mirroring the subset of `criterion` this
//! workspace uses (see `shims/README.md` for why external crates are shimmed).
//!
//! Supported surface: [`Criterion::benchmark_group`], `sample_size`,
//! `bench_function`, [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Methodology (simpler than real criterion, adequate for regression
//! tracking): each benchmark is warmed up once, then timed for `sample_size`
//! samples where every sample runs enough iterations to exceed ~5 ms; the
//! median, minimum and mean sample time per iteration are reported on stdout.
//! No statistical outlier analysis, plots or baseline files are produced.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost.  The shim runs one setup per
/// measured routine invocation regardless of the variant, so the variants are
/// accepted (for API compatibility) but equivalent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Collected timing for one benchmark.
#[derive(Debug, Clone, Copy)]
struct Sample {
    per_iter: Duration,
}

/// The measurement context handed to a benchmark closure.
pub struct Bencher {
    samples: Vec<Sample>,
    sample_size: usize,
}

impl Bencher {
    /// Time a routine, excluding nothing: the closure is the measured unit.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and calibration: find an iteration count that runs ≥ ~5 ms.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break;
            }
            iters = (iters * 2).max((iters as f64 * 6e-3 / elapsed.as_secs_f64().max(1e-9)) as u64);
        }
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(Sample {
                per_iter: t0.elapsed() / iters as u32,
            });
        }
    }

    /// Time a routine whose input is rebuilt by `setup` outside the measured
    /// region.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        // Warm-up.
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(Sample {
                per_iter: t0.elapsed(),
            });
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    let mut times: Vec<Duration> = bencher.samples.iter().map(|s| s.per_iter).collect();
    if times.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    times.sort_unstable();
    let median = times[times.len() / 2];
    let min = times[0];
    let mean = times.iter().sum::<Duration>() / times.len() as u32;
    println!(
        "{id:<40} time: [median {} | min {} | mean {}]",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(mean)
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measured samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Define and immediately run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// End the group (API compatibility; nothing to flush).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Define and run an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, 10, &mut f);
        self
    }
}

/// Bundle benchmark functions into a runnable group, as criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` for a bench target (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.sample_size(3);
        let mut ran = 0u64;
        group.bench_function("noop_sum", |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_consumes_setup_output() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest_batched");
        group.sample_size(2);
        group.bench_function("vec_drain", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.into_iter().map(u64::from).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
