//! Offline shim of the `polling` crate (see `shims/README.md`): a minimal
//! portable readiness API over the POSIX `poll(2)` system call, with an
//! `epoll(7)` backend on Linux.
//!
//! The real crate multiplexes over epoll/kqueue/IOCP; this shim keeps the
//! same shape — register sources with keys, wait for [`Event`]s — and picks
//! a backend at [`Poller::new`] time:
//!
//! * **epoll** (Linux): registrations live in the kernel, so `wait` is
//!   O(ready) instead of O(registered) — the property the sharded driver
//!   needs once per-loop fd counts grow.
//! * **poll** (every Unix): stateless fallback; the fd set is rebuilt on
//!   each `wait` from the registration table.
//!
//! Selection: the `DF_POLL_BACKEND` environment variable forces `"poll"` or
//! `"epoll"`; when unset, Linux uses epoll (falling back to poll if the
//! epoll fd cannot be created) and other Unixes use poll.  Both backends
//! share the same registration bookkeeping and `wait` semantics, so they
//! are interchangeable under the driver test suite (CI runs the driver
//! tests under both values of `DF_POLL_BACKEND`).
//!
//! Differences from upstream: readable interest only (`Event::writable` is
//! accepted but ignored by `wait`), no edge-triggered or oneshot modes, and
//! registration takes raw fds (the [`Source`] trait is implemented for
//! `RawFd` and for any `AsRawFd` reference, as in upstream's Unix build).
//! On non-Unix platforms [`Poller::new`] returns
//! [`std::io::ErrorKind::Unsupported`].
//!
//! The `poll(2)`/`epoll(7)` bindings are declared locally (`extern "C"`):
//! this workspace has no `libc` crate, and both are part of every libc the
//! Rust standard library already links against.  Every declaration is
//! allowlisted in df-lint's `FFI_ALLOWLIST`.

// Unsafe is confined to the `sys` modules (the poll/epoll FFI call sites,
// allowlisted by df-lint); any unsafe operation inside an `unsafe fn` must
// still be an explicit block with its own SAFETY comment.
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};

/// Raw file-descriptor type used for registration.  Aliased to `i32` on
/// non-Unix targets so the API still type-checks (construction fails there).
#[cfg(not(unix))]
pub type RawFd = i32;

/// Interest in (and report of) readiness events for one registered source,
/// identified by the caller-chosen `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier carried back by [`Poller::wait`].
    pub key: usize,
    /// Readable interest / readiness.
    pub readable: bool,
    /// Writable interest (accepted for API compatibility; this shim's
    /// `wait` only reports readability).
    pub writable: bool,
}

impl Event {
    /// Readable-only interest.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (keeps the source registered without polling it).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Which kernel readiness primitive backs a [`Poller`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Stateless `poll(2)`: the fd set is rebuilt on every `wait`.
    Poll,
    /// Linux `epoll(7)`: registrations live in the kernel.  Constructing a
    /// poller with this backend fails on other platforms.
    Epoll,
}

/// Something that can be registered with a [`Poller`]: a raw fd, or a
/// reference to anything exposing one.
pub trait Source {
    /// The raw file descriptor to poll.
    fn raw(&self) -> RawFd;
}

#[cfg(unix)]
impl Source for RawFd {
    fn raw(&self) -> RawFd {
        *self
    }
}

#[cfg(unix)]
impl<T: AsRawFd> Source for &T {
    fn raw(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(unix)]
mod sys {
    //! The `poll(2)` FFI surface.  `nfds_t` is `c_ulong` on every platform
    //! the workspace targets (Linux and the BSDs' ABI-compatible layouts).
    #![allow(unsafe_code)]

    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    pub const POLLIN: i16 = 0x001;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int) -> i32;
    }

    /// Converts an optional timeout to the millisecond convention shared by
    /// `poll(2)` and `epoll_wait(2)`: `None` ⇒ -1 (block forever), rounding
    /// *up* so a 100 µs timeout does not busy-spin at 0 ms.
    pub fn timeout_ms(timeout: Option<Duration>) -> std::ffi::c_int {
        match timeout {
            Some(t) => t
                .as_millis()
                .max(u128::from(!t.is_zero()))
                .try_into()
                .unwrap_or(std::ffi::c_int::MAX),
            None => -1,
        }
    }

    /// Safe wrapper: polls the given fd set, returning the number of entries
    /// with nonzero `revents`.  A `timeout` of `None` blocks indefinitely.
    pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms = timeout_ms(timeout);
        loop {
            // SAFETY: `fds` is a valid, exclusively borrowed slice of
            // `#[repr(C)]` pollfd-layout structs; `len()` bounds `nfds`.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry.  (Upstream `polling` returns early here; nothing
            // in this workspace installs signal handlers, so retrying keeps
            // callers simpler.)
        }
    }
}

#[cfg(target_os = "linux")]
mod sys_epoll {
    //! The `epoll(7)` FFI surface.  The epoll fd is wrapped in
    //! [`std::os::fd::OwnedFd`] so closing it needs no `close(2)` binding.
    #![allow(unsafe_code)]

    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd};
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;

    pub const EPOLL_CTL_ADD: std::ffi::c_int = 1;
    pub const EPOLL_CTL_DEL: std::ffi::c_int = 2;
    pub const EPOLL_CTL_MOD: std::ffi::c_int = 3;

    const EPOLL_CLOEXEC: std::ffi::c_int = 0x80000;

    /// Kernel `struct epoll_event`.  The x86-64 ABI packs it (no padding
    /// between the 32-bit mask and the 64-bit payload); other architectures
    /// use natural `repr(C)` layout.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Debug, Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: std::ffi::c_int) -> std::ffi::c_int;
        fn epoll_ctl(
            epfd: std::ffi::c_int,
            op: std::ffi::c_int,
            fd: std::ffi::c_int,
            event: *mut EpollEvent,
        ) -> std::ffi::c_int;
        fn epoll_wait(
            epfd: std::ffi::c_int,
            events: *mut EpollEvent,
            maxevents: std::ffi::c_int,
            timeout: std::ffi::c_int,
        ) -> std::ffi::c_int;
    }

    /// An owned epoll instance; the kernel object is released on drop.
    #[derive(Debug)]
    pub struct EpollFd(OwnedFd);

    impl EpollFd {
        /// Creates a close-on-exec epoll instance.
        pub fn new() -> io::Result<EpollFd> {
            // SAFETY: the lone FFI call takes no pointers; a non-negative
            // return is a freshly created fd the kernel handed to us and
            // nothing else owns, so wrapping it in `OwnedFd` is sound.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: `fd` was just returned by `epoll_create1`, is valid,
            // and ownership transfers exclusively to this `OwnedFd`.
            Ok(EpollFd(unsafe { OwnedFd::from_raw_fd(fd) }))
        }

        /// `epoll_ctl` wrapper; `op` is one of the `EPOLL_CTL_*` constants.
        pub fn ctl(
            &self,
            op: std::ffi::c_int,
            fd: RawFd,
            events: u32,
            key: usize,
        ) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: key as u64,
            };
            // SAFETY: `ev` is a live, exclusively borrowed `#[repr(C)]`
            // epoll_event; the epoll fd is owned by `self` and open.  For
            // `EPOLL_CTL_DEL` the kernel ignores the event pointer (passing
            // a valid one also satisfies pre-2.6.9 kernels).
            let rc = unsafe { epoll_ctl(self.0.as_raw_fd(), op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// `epoll_wait` wrapper: fills `events` (up to its capacity) and
        /// returns how many fired.  `EINTR` is retried as in `poll_fds`.
        pub fn wait(
            &self,
            events: &mut Vec<EpollEvent>,
            timeout: Option<Duration>,
        ) -> io::Result<usize> {
            let timeout_ms = super::sys::timeout_ms(timeout);
            let cap = events.capacity().max(1) as std::ffi::c_int;
            events.clear();
            events.reserve(cap as usize);
            loop {
                // SAFETY: `events` has capacity for at least `cap` entries of
                // `#[repr(C)]` epoll_event layout, and the kernel writes at
                // most `maxevents` of them; the epoll fd is owned and open.
                let rc =
                    unsafe { epoll_wait(self.0.as_raw_fd(), events.as_mut_ptr(), cap, timeout_ms) };
                if rc >= 0 {
                    // SAFETY: the kernel initialized exactly `rc` entries
                    // (`0 <= rc <= cap <= capacity`).
                    unsafe { events.set_len(rc as usize) };
                    return Ok(rc as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }
}

/// The per-poller backend state behind the shared registration table.
#[derive(Debug)]
enum Backend {
    /// Stateless `poll(2)`.
    Poll,
    /// Kernel-resident `epoll(7)` registrations.
    #[cfg(target_os = "linux")]
    Epoll(sys_epoll::EpollFd),
}

/// A registry of readable-interest sources that can be waited on together.
///
/// ```
/// use polling::{Event, Poller};
/// use std::net::UdpSocket;
/// use std::time::Duration;
///
/// let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
/// let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
/// let poller = Poller::new().unwrap();
/// poller.add(&rx, Event::readable(7)).unwrap();
///
/// let mut events = Vec::new();
/// // Nothing sent yet: the wait times out empty.
/// poller
///     .wait(&mut events, Some(Duration::from_millis(1)))
///     .unwrap();
/// assert!(events.is_empty());
///
/// tx.send_to(b"ping", rx.local_addr().unwrap()).unwrap();
/// poller
///     .wait(&mut events, Some(Duration::from_secs(5)))
///     .unwrap();
/// assert_eq!(events[0].key, 7);
/// ```
#[derive(Debug)]
pub struct Poller {
    sources: std::sync::Mutex<Vec<(RawFd, Event)>>,
    backend: Backend,
}

impl Poller {
    /// Create an empty poller with the backend chosen by `DF_POLL_BACKEND`
    /// (`"poll"` or `"epoll"`), defaulting to epoll on Linux (with a poll
    /// fallback if epoll creation fails) and poll elsewhere.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::Unsupported`] on non-Unix platforms, and
    /// [`io::ErrorKind::InvalidInput`] for an unrecognized `DF_POLL_BACKEND`
    /// value (a typo silently falling back would defeat the CI matrix).
    pub fn new() -> io::Result<Poller> {
        #[cfg(unix)]
        {
            match std::env::var("DF_POLL_BACKEND").as_deref() {
                Ok("poll") => Poller::with_backend(BackendKind::Poll),
                Ok("epoll") => Poller::with_backend(BackendKind::Epoll),
                Ok(other) => Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("DF_POLL_BACKEND={other:?}: expected \"poll\" or \"epoll\""),
                )),
                Err(_) => {
                    #[cfg(target_os = "linux")]
                    {
                        Poller::with_backend(BackendKind::Epoll)
                            .or_else(|_| Poller::with_backend(BackendKind::Poll))
                    }
                    #[cfg(not(target_os = "linux"))]
                    {
                        Poller::with_backend(BackendKind::Poll)
                    }
                }
            }
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "polling shim: poll(2) is only wrapped on Unix",
            ))
        }
    }

    /// Create an empty poller on an explicitly chosen backend (bypassing the
    /// `DF_POLL_BACKEND` selection in [`Poller::new`]).
    ///
    /// # Errors
    ///
    /// [`BackendKind::Epoll`] fails with [`io::ErrorKind::Unsupported`] off
    /// Linux; both kinds fail with it on non-Unix platforms.
    pub fn with_backend(kind: BackendKind) -> io::Result<Poller> {
        #[cfg(unix)]
        {
            let backend = match kind {
                BackendKind::Poll => Backend::Poll,
                #[cfg(target_os = "linux")]
                BackendKind::Epoll => Backend::Epoll(sys_epoll::EpollFd::new()?),
                #[cfg(not(target_os = "linux"))]
                BackendKind::Epoll => {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "polling shim: epoll is Linux-only",
                    ))
                }
            };
            Ok(Poller {
                sources: std::sync::Mutex::new(Vec::new()),
                backend,
            })
        }
        #[cfg(not(unix))]
        {
            let _ = kind;
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "polling shim: poll(2) is only wrapped on Unix",
            ))
        }
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> BackendKind {
        match self.backend {
            Backend::Poll => BackendKind::Poll,
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => BackendKind::Epoll,
        }
    }

    /// Translates an [`Event`] interest into an epoll mask: readable interest
    /// maps to `EPOLLIN`, none-interest to an empty mask (the fd stays
    /// registered but never fires on data).
    #[cfg(target_os = "linux")]
    fn epoll_mask(interest: Event) -> u32 {
        if interest.readable {
            sys_epoll::EPOLLIN
        } else {
            0
        }
    }

    /// Register a source with the given interest.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::AlreadyExists`] if the fd is already
    /// registered (use [`Poller::modify`] to change interest).
    pub fn add(&self, source: impl Source, interest: Event) -> io::Result<()> {
        let fd = source.raw();
        let mut sources = self.sources.lock().expect("poller lock");
        if sources.iter().any(|(f, _)| *f == fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("fd {fd} is already registered"),
            ));
        }
        #[cfg(target_os = "linux")]
        if let Backend::Epoll(ep) = &self.backend {
            ep.ctl(
                sys_epoll::EPOLL_CTL_ADD,
                fd,
                Self::epoll_mask(interest),
                interest.key,
            )?;
        }
        sources.push((fd, interest));
        Ok(())
    }

    /// Change a registered source's interest (and key).
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::NotFound`] if the fd is not registered.
    pub fn modify(&self, source: impl Source, interest: Event) -> io::Result<()> {
        let fd = source.raw();
        let mut sources = self.sources.lock().expect("poller lock");
        match sources.iter_mut().find(|(f, _)| *f == fd) {
            Some((_, ev)) => {
                #[cfg(target_os = "linux")]
                if let Backend::Epoll(ep) = &self.backend {
                    ep.ctl(
                        sys_epoll::EPOLL_CTL_MOD,
                        fd,
                        Self::epoll_mask(interest),
                        interest.key,
                    )?;
                }
                *ev = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            )),
        }
    }

    /// Deregister a source.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::NotFound`] if the fd is not registered.
    pub fn delete(&self, source: impl Source) -> io::Result<()> {
        let fd = source.raw();
        let mut sources = self.sources.lock().expect("poller lock");
        match sources.iter().position(|(f, _)| *f == fd) {
            Some(at) => {
                #[cfg(target_os = "linux")]
                if let Backend::Epoll(ep) = &self.backend {
                    ep.ctl(sys_epoll::EPOLL_CTL_DEL, fd, 0, 0)?;
                }
                sources.remove(at);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            )),
        }
    }

    /// Drop every registration at once (cheaper than per-fd `delete` when a
    /// driver rebuilds its whole fd set after membership changes).
    pub fn clear(&self) {
        let mut sources = self.sources.lock().expect("poller lock");
        #[cfg(target_os = "linux")]
        if let Backend::Epoll(ep) = &self.backend {
            for (fd, _) in sources.iter() {
                // A racing close of the fd elsewhere makes DEL fail with
                // EBADF/ENOENT; the registration is gone either way.
                let _ = ep.ctl(sys_epoll::EPOLL_CTL_DEL, *fd, 0, 0);
            }
        }
        sources.clear();
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.lock().expect("poller lock").len()
    }

    /// True when no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block until at least one source with readable interest is readable,
    /// or `timeout` elapses (`None` = wait forever).  Readiness events are
    /// appended to `events` (which is cleared first, as in upstream `wait`
    /// with a fresh `Events`); returns how many fired.
    ///
    /// Error conditions on a source (`POLLERR`/`POLLHUP`/`POLLNVAL`, or the
    /// epoll equivalents) are reported as readable so the owner's next read
    /// surfaces the error instead of the loop spinning on an invisible
    /// condition.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)`/`epoll_wait(2)` failures (other than `EINTR`,
    /// which is retried).
    #[cfg(unix)]
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let watched = {
            let sources = self.sources.lock().expect("poller lock");
            sources.iter().filter(|(_, ev)| ev.readable).count()
        };
        if watched == 0 {
            // Nothing to poll: honour the timeout as a plain sleep so callers
            // can use `wait` as their loop's pacing primitive regardless.
            if let Some(t) = timeout {
                std::thread::sleep(t);
                return Ok(0);
            }
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "waiting forever on an empty poller would never return",
            ));
        }
        match &self.backend {
            Backend::Poll => self.wait_poll(events, timeout),
            #[cfg(target_os = "linux")]
            Backend::Epoll(ep) => {
                let mut buf: Vec<sys_epoll::EpollEvent> = Vec::with_capacity(watched);
                let fired = ep.wait(&mut buf, timeout)?;
                for ev in &buf {
                    let mask = ev.events;
                    if mask & (sys_epoll::EPOLLIN | sys_epoll::EPOLLERR | sys_epoll::EPOLLHUP) != 0
                    {
                        events.push(Event::readable(ev.data as usize));
                    }
                }
                Ok(fired)
            }
        }
    }

    /// Non-Unix stub: a [`Poller`] cannot be constructed here ([`Poller::new`]
    /// fails), so this is unreachable; it exists to keep callers compiling.
    #[cfg(not(unix))]
    pub fn wait(&self, events: &mut Vec<Event>, _timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "polling shim: poll(2) is only wrapped on Unix",
        ))
    }

    #[cfg(unix)]
    fn wait_poll(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        let mut fds: Vec<sys::PollFd> = Vec::new();
        let keys: Vec<usize> = {
            let sources = self.sources.lock().expect("poller lock");
            sources
                .iter()
                .filter(|(_, ev)| ev.readable)
                .map(|(fd, ev)| {
                    fds.push(sys::PollFd {
                        fd: *fd,
                        events: sys::POLLIN,
                        revents: 0,
                    });
                    ev.key
                })
                .collect()
        };
        let fired = sys::poll_fds(&mut fds, timeout)?;
        for (pfd, key) in fds.iter().zip(keys) {
            if pfd.revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0 {
                events.push(Event::readable(key));
            }
        }
        Ok(fired)
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::net::UdpSocket;
    use std::time::Instant;

    fn socket_pair() -> (UdpSocket, UdpSocket) {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        (rx, tx)
    }

    /// Every backend constructible on this platform, so each scenario runs
    /// against all of them.
    fn backends() -> Vec<Poller> {
        let mut pollers = vec![Poller::with_backend(BackendKind::Poll).unwrap()];
        if cfg!(target_os = "linux") {
            pollers.push(Poller::with_backend(BackendKind::Epoll).unwrap());
        }
        pollers
    }

    #[test]
    fn readable_socket_fires_its_key() {
        for poller in backends() {
            let (rx, tx) = socket_pair();
            poller.add(&rx, Event::readable(42)).unwrap();
            tx.send_to(b"x", rx.local_addr().unwrap()).unwrap();
            let mut events = Vec::new();
            let n = poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(n, 1, "{:?}", poller.backend());
            assert_eq!(events, vec![Event::readable(42)]);
        }
    }

    #[test]
    fn timeout_expires_without_events() {
        for poller in backends() {
            let (rx, _tx) = socket_pair();
            poller.add(&rx, Event::readable(0)).unwrap();
            let mut events = Vec::new();
            let t0 = Instant::now();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(30)))
                .unwrap();
            assert_eq!(n, 0);
            assert!(events.is_empty());
            let waited = t0.elapsed();
            assert!(
                waited >= Duration::from_millis(25),
                "{:?} returned after only {waited:?}",
                poller.backend()
            );
        }
    }

    #[test]
    fn only_the_ready_source_is_reported() {
        for poller in backends() {
            let (rx_a, tx) = socket_pair();
            let rx_b = UdpSocket::bind("127.0.0.1:0").unwrap();
            poller.add(&rx_a, Event::readable(1)).unwrap();
            poller.add(&rx_b, Event::readable(2)).unwrap();
            tx.send_to(b"only a", rx_a.local_addr().unwrap()).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events, vec![Event::readable(1)]);
        }
    }

    #[test]
    fn multiple_ready_sources_all_fire() {
        for poller in backends() {
            let (rx_a, tx) = socket_pair();
            let rx_b = UdpSocket::bind("127.0.0.1:0").unwrap();
            poller.add(&rx_a, Event::readable(1)).unwrap();
            poller.add(&rx_b, Event::readable(2)).unwrap();
            tx.send_to(b"a", rx_a.local_addr().unwrap()).unwrap();
            tx.send_to(b"b", rx_b.local_addr().unwrap()).unwrap();
            // Give the loopback deliveries a moment to both land.
            std::thread::sleep(Duration::from_millis(10));
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            let mut keys: Vec<usize> = events.iter().map(|e| e.key).collect();
            keys.sort_unstable();
            assert_eq!(keys, vec![1, 2], "{:?}", poller.backend());
        }
    }

    #[test]
    fn none_interest_is_not_polled() {
        for poller in backends() {
            let (rx, tx) = socket_pair();
            poller.add(&rx, Event::none(9)).unwrap();
            tx.send_to(b"x", rx.local_addr().unwrap()).unwrap();
            std::thread::sleep(Duration::from_millis(10));
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty());
            // Flip interest on: the datagram is still queued and fires now.
            poller.modify(&rx, Event::readable(9)).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events, vec![Event::readable(9)]);
        }
    }

    #[test]
    fn registration_bookkeeping() {
        for poller in backends() {
            let (rx, _tx) = socket_pair();
            assert!(poller.is_empty());
            poller.add(&rx, Event::readable(0)).unwrap();
            assert_eq!(poller.len(), 1);
            assert_eq!(
                poller.add(&rx, Event::readable(1)).unwrap_err().kind(),
                io::ErrorKind::AlreadyExists
            );
            poller.delete(&rx).unwrap();
            assert!(poller.is_empty());
            assert_eq!(
                poller.delete(&rx).unwrap_err().kind(),
                io::ErrorKind::NotFound
            );
            assert_eq!(
                poller.modify(&rx, Event::readable(0)).unwrap_err().kind(),
                io::ErrorKind::NotFound
            );
        }
    }

    #[test]
    fn empty_poller_with_timeout_sleeps() {
        for poller in backends() {
            let mut events = Vec::new();
            let t0 = Instant::now();
            let n = poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap();
            assert_eq!(n, 0);
            assert!(t0.elapsed() >= Duration::from_millis(15));
            // Waiting forever on nothing is refused rather than deadlocking.
            assert_eq!(
                poller.wait(&mut events, None).unwrap_err().kind(),
                io::ErrorKind::InvalidInput
            );
        }
    }

    #[test]
    fn clear_drops_all_registrations() {
        for poller in backends() {
            let (rx_a, tx) = socket_pair();
            let rx_b = UdpSocket::bind("127.0.0.1:0").unwrap();
            poller.add(&rx_a, Event::readable(1)).unwrap();
            poller.add(&rx_b, Event::readable(2)).unwrap();
            poller.clear();
            assert!(poller.is_empty());
            // After a clear the same fds can be re-registered and still fire
            // (exercises the kernel-side DEL on the epoll backend).
            poller.add(&rx_a, Event::readable(3)).unwrap();
            tx.send_to(b"x", rx_a.local_addr().unwrap()).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events, vec![Event::readable(3)]);
        }
    }

    #[test]
    fn raw_fd_registration_works() {
        use std::os::unix::io::AsRawFd;
        for poller in backends() {
            let (rx, tx) = socket_pair();
            let fd: RawFd = rx.as_raw_fd();
            poller.add(fd, Event::readable(3)).unwrap();
            tx.send_to(b"x", rx.local_addr().unwrap()).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events, vec![Event::readable(3)]);
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_backend_is_selected_by_default_on_linux() {
        // `Poller::new` honours DF_POLL_BACKEND; without an override Linux
        // prefers epoll.  (CI sets the env var to pin each backend; this
        // test only runs meaningfully when the variable is absent.)
        match std::env::var("DF_POLL_BACKEND").as_deref() {
            Ok("poll") => assert_eq!(Poller::new().unwrap().backend(), BackendKind::Poll),
            Ok("epoll") => assert_eq!(Poller::new().unwrap().backend(), BackendKind::Epoll),
            _ => assert_eq!(Poller::new().unwrap().backend(), BackendKind::Epoll),
        }
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_key_follows_modify() {
        let poller = Poller::with_backend(BackendKind::Epoll).unwrap();
        let (rx, tx) = socket_pair();
        poller.add(&rx, Event::readable(1)).unwrap();
        poller.modify(&rx, Event::readable(77)).unwrap();
        tx.send_to(b"x", rx.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events, vec![Event::readable(77)]);
    }
}
