//! Offline shim of the `polling` crate (see `shims/README.md`): a minimal
//! portable readiness API over the POSIX `poll(2)` system call.
//!
//! The real crate multiplexes over epoll/kqueue/IOCP; this shim keeps the
//! same shape — register sources with keys, wait for [`Event`]s — but backs
//! it with plain `poll(2)`, which needs no persistent kernel object and is
//! available on every Unix.  That is plenty for the event-loop driver in
//! `df-proto`, whose fd sets are rebuilt wholesale when multicast
//! memberships change anyway (a `poll(2)` call is stateless, so
//! re-registration is free).
//!
//! Differences from upstream: readable interest only (`Event::writable` is
//! accepted but ignored by `wait`), no edge-triggered or oneshot modes, and
//! registration takes raw fds (the [`Source`] trait is implemented for
//! `RawFd` and for any `AsRawFd` reference, as in upstream's Unix build).
//! On non-Unix platforms [`Poller::new`] returns
//! [`std::io::ErrorKind::Unsupported`].
//!
//! The `poll(2)` binding is declared locally (`extern "C"`): this workspace
//! has no `libc` crate, and `poll` is part of every Unix libc the Rust
//! standard library already links against.

// Unsafe is confined to `mod sys` (the lone `poll(2)` FFI call, allowlisted
// by df-lint); any unsafe operation inside an `unsafe fn` must still be an
// explicit block with its own SAFETY comment.
#![deny(unsafe_op_in_unsafe_fn)]

use std::io;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::io::{AsRawFd, RawFd};

/// Raw file-descriptor type used for registration.  Aliased to `i32` on
/// non-Unix targets so the API still type-checks (construction fails there).
#[cfg(not(unix))]
pub type RawFd = i32;

/// Interest in (and report of) readiness events for one registered source,
/// identified by the caller-chosen `key`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier carried back by [`Poller::wait`].
    pub key: usize,
    /// Readable interest / readiness.
    pub readable: bool,
    /// Writable interest (accepted for API compatibility; this shim's
    /// `wait` only reports readability).
    pub writable: bool,
}

impl Event {
    /// Readable-only interest.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (keeps the source registered without polling it).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// Something that can be registered with a [`Poller`]: a raw fd, or a
/// reference to anything exposing one.
pub trait Source {
    /// The raw file descriptor to poll.
    fn raw(&self) -> RawFd;
}

#[cfg(unix)]
impl Source for RawFd {
    fn raw(&self) -> RawFd {
        *self
    }
}

#[cfg(unix)]
impl<T: AsRawFd> Source for &T {
    fn raw(&self) -> RawFd {
        self.as_raw_fd()
    }
}

#[cfg(unix)]
mod sys {
    //! The `poll(2)` FFI surface.  `nfds_t` is `c_ulong` on every platform
    //! the workspace targets (Linux and the BSDs' ABI-compatible layouts).
    #![allow(unsafe_code)]

    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    pub const POLLIN: i16 = 0x001;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Debug, Clone, Copy)]
    pub struct PollFd {
        pub fd: RawFd,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: std::ffi::c_ulong, timeout: std::ffi::c_int) -> i32;
    }

    /// Safe wrapper: polls the given fd set, returning the number of entries
    /// with nonzero `revents`.  A `timeout` of `None` blocks indefinitely.
    pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let timeout_ms: std::ffi::c_int = match timeout {
            // Round *up* so a 100 µs timeout does not busy-spin at 0 ms.
            Some(t) => t
                .as_millis()
                .max(u128::from(!t.is_zero()))
                .try_into()
                .unwrap_or(std::ffi::c_int::MAX),
            None => -1,
        };
        loop {
            // SAFETY: `fds` is a valid, exclusively borrowed slice of
            // `#[repr(C)]` pollfd-layout structs; `len()` bounds `nfds`.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as std::ffi::c_ulong, timeout_ms) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry.  (Upstream `polling` returns early here; nothing
            // in this workspace installs signal handlers, so retrying keeps
            // callers simpler.)
        }
    }
}

/// A registry of readable-interest sources that can be waited on together.
///
/// ```
/// use polling::{Event, Poller};
/// use std::net::UdpSocket;
/// use std::time::Duration;
///
/// let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
/// let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
/// let poller = Poller::new().unwrap();
/// poller.add(&rx, Event::readable(7)).unwrap();
///
/// let mut events = Vec::new();
/// // Nothing sent yet: the wait times out empty.
/// poller
///     .wait(&mut events, Some(Duration::from_millis(1)))
///     .unwrap();
/// assert!(events.is_empty());
///
/// tx.send_to(b"ping", rx.local_addr().unwrap()).unwrap();
/// poller
///     .wait(&mut events, Some(Duration::from_secs(5)))
///     .unwrap();
/// assert_eq!(events[0].key, 7);
/// ```
#[derive(Debug)]
pub struct Poller {
    sources: std::sync::Mutex<Vec<(RawFd, Event)>>,
}

impl Poller {
    /// Create an empty poller.
    ///
    /// # Errors
    ///
    /// Returns [`io::ErrorKind::Unsupported`] on non-Unix platforms.
    pub fn new() -> io::Result<Poller> {
        #[cfg(unix)]
        {
            Ok(Poller {
                sources: std::sync::Mutex::new(Vec::new()),
            })
        }
        #[cfg(not(unix))]
        {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "polling shim: poll(2) is only wrapped on Unix",
            ))
        }
    }

    /// Register a source with the given interest.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::AlreadyExists`] if the fd is already
    /// registered (use [`Poller::modify`] to change interest).
    pub fn add(&self, source: impl Source, interest: Event) -> io::Result<()> {
        let fd = source.raw();
        let mut sources = self.sources.lock().expect("poller lock");
        if sources.iter().any(|(f, _)| *f == fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("fd {fd} is already registered"),
            ));
        }
        sources.push((fd, interest));
        Ok(())
    }

    /// Change a registered source's interest (and key).
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::NotFound`] if the fd is not registered.
    pub fn modify(&self, source: impl Source, interest: Event) -> io::Result<()> {
        let fd = source.raw();
        let mut sources = self.sources.lock().expect("poller lock");
        match sources.iter_mut().find(|(f, _)| *f == fd) {
            Some((_, ev)) => {
                *ev = interest;
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            )),
        }
    }

    /// Deregister a source.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::NotFound`] if the fd is not registered.
    pub fn delete(&self, source: impl Source) -> io::Result<()> {
        let fd = source.raw();
        let mut sources = self.sources.lock().expect("poller lock");
        match sources.iter().position(|(f, _)| *f == fd) {
            Some(at) => {
                sources.remove(at);
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("fd {fd} is not registered"),
            )),
        }
    }

    /// Drop every registration at once (cheaper than per-fd `delete` when a
    /// driver rebuilds its whole fd set after membership changes).
    pub fn clear(&self) {
        self.sources.lock().expect("poller lock").clear();
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.lock().expect("poller lock").len()
    }

    /// True when no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Block until at least one source with readable interest is readable,
    /// or `timeout` elapses (`None` = wait forever).  Readiness events are
    /// appended to `events` (which is cleared first, as in upstream `wait`
    /// with a fresh `Events`); returns how many fired.
    ///
    /// Error conditions on a source (`POLLERR`/`POLLHUP`/`POLLNVAL`) are
    /// reported as readable so the owner's next read surfaces the error
    /// instead of the loop spinning on an invisible condition.
    ///
    /// # Errors
    ///
    /// Propagates `poll(2)` failures (other than `EINTR`, which is retried).
    #[cfg(unix)]
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        self.wait_unix(events, timeout)
    }

    /// Non-Unix stub: a [`Poller`] cannot be constructed here ([`Poller::new`]
    /// fails), so this is unreachable; it exists to keep callers compiling.
    #[cfg(not(unix))]
    pub fn wait(&self, events: &mut Vec<Event>, _timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "polling shim: poll(2) is only wrapped on Unix",
        ))
    }

    #[cfg(unix)]
    fn wait_unix(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let mut fds: Vec<sys::PollFd> = Vec::new();
        let keys: Vec<usize> = {
            let sources = self.sources.lock().expect("poller lock");
            sources
                .iter()
                .filter(|(_, ev)| ev.readable)
                .map(|(fd, ev)| {
                    fds.push(sys::PollFd {
                        fd: *fd,
                        events: sys::POLLIN,
                        revents: 0,
                    });
                    ev.key
                })
                .collect()
        };
        if fds.is_empty() {
            // Nothing to poll: honour the timeout as a plain sleep so callers
            // can use `wait` as their loop's pacing primitive regardless.
            if let Some(t) = timeout {
                std::thread::sleep(t);
                return Ok(0);
            }
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "waiting forever on an empty poller would never return",
            ));
        }
        let fired = sys::poll_fds(&mut fds, timeout)?;
        for (pfd, key) in fds.iter().zip(keys) {
            if pfd.revents & (sys::POLLIN | sys::POLLERR | sys::POLLHUP | sys::POLLNVAL) != 0 {
                events.push(Event::readable(key));
            }
        }
        Ok(fired)
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::net::UdpSocket;
    use std::time::Instant;

    fn socket_pair() -> (UdpSocket, UdpSocket) {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        (rx, tx)
    }

    #[test]
    fn readable_socket_fires_its_key() {
        let (rx, tx) = socket_pair();
        let poller = Poller::new().unwrap();
        poller.add(&rx, Event::readable(42)).unwrap();
        tx.send_to(b"x", rx.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(n, 1);
        assert_eq!(events, vec![Event::readable(42)]);
    }

    #[test]
    fn timeout_expires_without_events() {
        let (rx, _tx) = socket_pair();
        let poller = Poller::new().unwrap();
        poller.add(&rx, Event::readable(0)).unwrap();
        let mut events = Vec::new();
        let t0 = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(events.is_empty());
        let waited = t0.elapsed();
        assert!(
            waited >= Duration::from_millis(25),
            "returned after only {waited:?}"
        );
    }

    #[test]
    fn only_the_ready_source_is_reported() {
        let (rx_a, tx) = socket_pair();
        let rx_b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&rx_a, Event::readable(1)).unwrap();
        poller.add(&rx_b, Event::readable(2)).unwrap();
        tx.send_to(b"only a", rx_a.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events, vec![Event::readable(1)]);
    }

    #[test]
    fn multiple_ready_sources_all_fire() {
        let (rx_a, tx) = socket_pair();
        let rx_b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&rx_a, Event::readable(1)).unwrap();
        poller.add(&rx_b, Event::readable(2)).unwrap();
        tx.send_to(b"a", rx_a.local_addr().unwrap()).unwrap();
        tx.send_to(b"b", rx_b.local_addr().unwrap()).unwrap();
        // Give the loopback deliveries a moment to both land.
        std::thread::sleep(Duration::from_millis(10));
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let mut keys: Vec<usize> = events.iter().map(|e| e.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![1, 2]);
    }

    #[test]
    fn none_interest_is_not_polled() {
        let (rx, tx) = socket_pair();
        let poller = Poller::new().unwrap();
        poller.add(&rx, Event::none(9)).unwrap();
        tx.send_to(b"x", rx.local_addr().unwrap()).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert!(events.is_empty());
        // Flip interest on: the datagram is still queued and fires now.
        poller.modify(&rx, Event::readable(9)).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events, vec![Event::readable(9)]);
    }

    #[test]
    fn registration_bookkeeping() {
        let (rx, _tx) = socket_pair();
        let poller = Poller::new().unwrap();
        assert!(poller.is_empty());
        poller.add(&rx, Event::readable(0)).unwrap();
        assert_eq!(poller.len(), 1);
        assert_eq!(
            poller.add(&rx, Event::readable(1)).unwrap_err().kind(),
            io::ErrorKind::AlreadyExists
        );
        poller.delete(&rx).unwrap();
        assert!(poller.is_empty());
        assert_eq!(
            poller.delete(&rx).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
        assert_eq!(
            poller.modify(&rx, Event::readable(0)).unwrap_err().kind(),
            io::ErrorKind::NotFound
        );
    }

    #[test]
    fn empty_poller_with_timeout_sleeps() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let t0 = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(t0.elapsed() >= Duration::from_millis(15));
        // Waiting forever on nothing is refused rather than deadlocking.
        assert_eq!(
            poller.wait(&mut events, None).unwrap_err().kind(),
            io::ErrorKind::InvalidInput
        );
    }

    #[test]
    fn clear_drops_all_registrations() {
        let (rx_a, _tx) = socket_pair();
        let rx_b = UdpSocket::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        poller.add(&rx_a, Event::readable(1)).unwrap();
        poller.add(&rx_b, Event::readable(2)).unwrap();
        poller.clear();
        assert!(poller.is_empty());
    }

    #[test]
    fn raw_fd_registration_works() {
        use std::os::unix::io::AsRawFd;
        let (rx, tx) = socket_pair();
        let poller = Poller::new().unwrap();
        let fd: RawFd = rx.as_raw_fd();
        poller.add(fd, Event::readable(3)).unwrap();
        tx.send_to(b"x", rx.local_addr().unwrap()).unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events, vec![Event::readable(3)]);
    }
}
