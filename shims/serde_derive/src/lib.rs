//! Offline `#[derive(Serialize, Deserialize)]` for the in-tree serde shim
//! (see `shims/README.md`).
//!
//! Implemented without `syn`/`quote`: the derive input is walked as a raw
//! token stream, which is sufficient because the supported shapes are exactly
//! the ones this workspace defines —
//!
//! * structs with named fields,
//! * enums whose variants are unit or struct variants.
//!
//! Tuple structs, tuple variants and generic types are rejected with a
//! compile-time error.  Field *types* never need to be parsed: the generated
//! code calls `serde::Deserialize::from_value` in struct-literal position and
//! lets inference pick the impl.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write as _;

#[derive(Debug)]
enum Shape {
    Struct {
        name: String,
        fields: Vec<String>,
    },
    Enum {
        name: String,
        variants: Vec<(String, Option<Vec<String>>)>,
    },
}

/// Split a token stream into trees, dropping outer attributes (`#[...]`).
fn significant_tokens(input: TokenStream) -> Vec<TokenTree> {
    let mut out = Vec::new();
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Punct(p) = &tt {
            if p.as_char() == '#' {
                // Attribute: swallow the following [...] group (and a `!` for
                // inner attributes, which cannot appear here anyway).
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Bracket {
                        iter.next();
                        continue;
                    }
                }
            }
        }
        out.push(tt);
    }
    out
}

/// Parse `name: Type` field lists from a brace-group body, returning the
/// field names in declaration order.
fn parse_named_fields(group: TokenStream, context: &str) -> Vec<String> {
    let tokens = significant_tokens(group);
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Optional visibility.
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde shim derive: unexpected token `{other}` in {context}"),
            None => break,
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => panic!(
                "serde shim derive: {context} must use named fields (tuple shapes are unsupported)"
            ),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while let Some(tt) = tokens.get(i) {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(name);
    }
    fields
}

/// Parse enum variants: `Unit` or `Name { fields }`.
fn parse_variants(group: TokenStream, context: &str) -> Vec<(String, Option<Vec<String>>)> {
    let tokens = significant_tokens(group);
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde shim derive: unexpected token `{other}` in {context}"),
        };
        i += 1;
        let mut fields = None;
        if let Some(TokenTree::Group(g)) = tokens.get(i) {
            match g.delimiter() {
                Delimiter::Brace => {
                    fields = Some(parse_named_fields(g.stream(), context));
                    i += 1;
                }
                Delimiter::Parenthesis => panic!(
                    "serde shim derive: tuple variant `{name}` in {context} is unsupported; use a struct variant"
                ),
                _ => {}
            }
        }
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push((name, fields));
    }
    variants
}

fn parse_shape(input: TokenStream) -> Shape {
    let tokens = significant_tokens(input);
    let mut i = 0;
    // Optional visibility.
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde shim derive: expected type name, found {other:?}"),
    };
    i += 1;
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
            "serde shim derive: generic type `{name}` is unsupported (no generic types in this workspace derive serde traits)"
        ),
        other => panic!(
            "serde shim derive: `{name}` has no braced body ({other:?}); unit and tuple shapes are unsupported"
        ),
    };
    match kind.as_str() {
        "struct" => Shape::Struct {
            fields: parse_named_fields(body, &format!("struct {name}")),
            name,
        },
        "enum" => Shape::Enum {
            variants: parse_variants(body, &format!("enum {name}")),
            name,
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

fn field_object_expr(fields: &[String], access_prefix: &str) -> String {
    let mut s = String::from("::serde::Value::Object(::std::vec![");
    for f in fields {
        let _ = write!(
            s,
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({access_prefix}{f})),"
        );
    }
    s.push_str("])");
    s
}

fn field_struct_literal(fields: &[String], obj_var: &str) -> String {
    let mut s = String::from("{");
    for f in fields {
        let _ = write!(
            s,
            "{f}: ::serde::Deserialize::from_value(::serde::get_field({obj_var}, \"{f}\")?)?,"
        );
    }
    s.push('}');
    s
}

/// Derive `serde::Serialize` (value-tree flavour; see the serde shim docs).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let body = field_object_expr(&fields, "&self.");
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\
                 }}"
            );
        }
        Shape::Enum { name, variants } => {
            let mut arms = String::new();
            for (variant, fields) in &variants {
                match fields {
                    None => {
                        let _ = write!(
                            arms,
                            "{name}::{variant} => ::serde::Value::String(::std::string::String::from(\"{variant}\")),"
                        );
                    }
                    Some(fields) => {
                        let bindings = fields.join(", ");
                        let inner = field_object_expr(fields, "");
                        let _ = write!(
                            arms,
                            "{name}::{variant} {{ {bindings} }} => ::serde::Value::Object(::std::vec![\
                                 (::std::string::String::from(\"{variant}\"), {inner})\
                             ]),"
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Serialize for {name} {{\
                     fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }}\
                 }}"
            );
        }
    }
    out.parse()
        .expect("serde shim derive generated invalid Rust")
}

/// Derive `serde::Deserialize` (value-tree flavour; see the serde shim docs).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let mut out = String::new();
    match parse_shape(input) {
        Shape::Struct { name, fields } => {
            let literal = field_struct_literal(&fields, "fields");
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\
                         let fields = value.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\
                         ::std::result::Result::Ok({name} {literal})\
                     }}\
                 }}"
            );
        }
        Shape::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut struct_arms = String::new();
            for (variant, fields) in &variants {
                match fields {
                    None => {
                        let _ = write!(
                            unit_arms,
                            "\"{variant}\" => ::std::result::Result::Ok({name}::{variant}),"
                        );
                    }
                    Some(fields) => {
                        let literal = field_struct_literal(fields, "fields");
                        let _ = write!(
                            struct_arms,
                            "\"{variant}\" => {{\
                                 let fields = inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object body for variant {variant} of {name}\"))?;\
                                 ::std::result::Result::Ok({name}::{variant} {literal})\
                             }},"
                        );
                    }
                }
            }
            let _ = write!(
                out,
                "impl ::serde::Deserialize for {name} {{\
                     fn from_value(value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\
                         match value {{\
                             ::serde::Value::String(tag) => match tag.as_str() {{\
                                 {unit_arms}\
                                 other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown unit variant `{{other}}` of {name}\"))),\
                             }},\
                             ::serde::Value::Object(tagged) if tagged.len() == 1 => {{\
                                 let (tag, inner) = &tagged[0];\
                                 let _ = inner;\
                                 match tag.as_str() {{\
                                     {struct_arms}\
                                     other => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown struct variant `{{other}}` of {name}\"))),\
                                 }}\
                             }},\
                             _ => ::std::result::Result::Err(::serde::Error::custom(\"expected string or single-key object for enum {name}\")),\
                         }}\
                     }}\
                 }}"
            );
        }
    }
    out.parse()
        .expect("serde shim derive generated invalid Rust")
}
