//! Model-checked counterpart of `std::thread`: spawn/join become scheduling
//! points, and `yield_now` marks spin-loop back-off for the scheduler.

use std::any::Any;
use std::marker::PhantomData;

use crate::rt;

/// Handle to a spawned model thread; joining is a scheduling point that is
/// enabled once the target thread finishes.
#[derive(Debug)]
pub struct JoinHandle<T> {
    tid: usize,
    _marker: PhantomData<fn() -> T>,
}

/// Spawn a new model thread.  Panics if the model exceeds
/// [`Builder::max_threads`](crate::Builder::max_threads).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let tid = rt::spawn_thread(Box::new(move || Box::new(f()) as Box<dyn Any + Send>));
    JoinHandle {
        tid,
        _marker: PhantomData,
    }
}

impl<T: 'static> JoinHandle<T> {
    /// Wait for the thread to finish and take its result.
    pub fn join(self) -> std::thread::Result<T> {
        match rt::join_thread(self.tid) {
            Some(boxed) => Ok(*boxed
                .downcast::<T>()
                .expect("loom (shim): join result type mismatch")),
            // Teardown of an aborted execution: the caller is unwinding.
            None => Err(Box::new(()) as Box<dyn Any + Send>),
        }
    }
}

/// Voluntarily give up the CPU.  The scheduler deprioritizes a yielding
/// thread, so spin loops (`while !flag { yield_now() }`) make progress and
/// terminate instead of blowing the step budget.
pub fn yield_now() {
    rt::yield_now()
}
