//! The schedule explorer: depth-first search over the tree of scheduling
//! decisions, with DPOR-lite pruning (alternatives are only considered for
//! threads whose pending operation *conflicts* with another pending
//! operation — permutations of commuting steps are never revisited) and an
//! optional preemption bound (switching away from a still-enabled,
//! non-yielding thread counts as one preemption).

use std::any::Any;
use std::sync::Arc;

use crate::rt::{self, ExecState, Execution, ModelFailure, START_OP};

/// Explorer configuration; the loom-compatible entry point is
/// [`Builder::check`], and [`Builder::explored`] additionally reports how
/// many schedules the search visited (shim extension, used by self-tests).
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum number of model threads alive at once (including the root).
    pub max_threads: usize,
    /// Hard cap on explored schedules: exceeding it *fails* the model with an
    /// "exploration truncated" panic rather than silently passing on a
    /// partial search, so CI time stays deterministic.
    pub max_branches: usize,
    /// Maximum context switches away from a runnable thread per schedule;
    /// `None` explores every conflict-distinct interleaving.
    pub preemption_bound: Option<usize>,
    /// Per-schedule step budget; exceeding it fails the model (livelock).
    pub max_steps: usize,
}

impl Default for Builder {
    fn default() -> Builder {
        Builder {
            max_threads: 5,
            max_branches: 10_000,
            preemption_bound: None,
            max_steps: 10_000,
        }
    }
}

impl Builder {
    /// A builder with the default exploration limits.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Model-check `f`, exhaustively exploring conflict-distinct schedules.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.explored(f);
    }

    /// Like [`check`](Builder::check), returning the number of schedules the
    /// search visited (shim extension over upstream loom).
    pub fn explored<F>(&self, f: F) -> usize
    where
        F: Fn() + Send + Sync + 'static,
    {
        rt::install_quiet_hook();
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut path: Vec<Branch> = Vec::new();
        let mut schedules = 0usize;
        loop {
            schedules += 1;
            if schedules > self.max_branches {
                panic!(
                    "loom (shim): exploration truncated after {} schedules — raise \
                     Builder::max_branches or shrink the model",
                    schedules - 1
                );
            }
            run_one(self, &f, &mut path, schedules);
            loop {
                match path.last_mut() {
                    None => return schedules,
                    Some(branch) => {
                        if let Some(next) = branch.alternatives.pop() {
                            branch.done.push(branch.chosen);
                            branch.chosen = next;
                            break;
                        }
                        path.pop();
                    }
                }
            }
        }
    }
}

/// One decision point along the DFS path.
///
/// `alternatives` is filled *backwards* (classic DPOR): when a later step
/// executes an operation conflicting with the step taken here, its thread is
/// added as an alternative to revisit — so races hidden behind a thread's
/// non-conflicting prefix are still reached, while schedules that only
/// permute commuting steps are never generated.
struct Branch {
    chosen: usize,
    alternatives: Vec<usize>,
    /// Threads already explored at this decision (avoids re-adding them).
    done: Vec<usize>,
    /// Enabled set when the decision was first reached.
    enabled: Vec<usize>,
    /// `Some(p)` when switching away from `p` here costs a preemption.
    preempt_against: Option<usize>,
    /// Preemptions spent on the path before this decision.
    preemptions: usize,
}

enum Outcome {
    Done,
    Abort,
    Failed(String),
}

fn is_enabled(st: &ExecState, tid: usize) -> bool {
    let op = match st.threads[tid].pending {
        Some(op) => op,
        None => return false,
    };
    match op.kind {
        rt::OpKind::LockAcquire { write } => match &st.objects[op.obj as usize] {
            rt::ObjState::Lock { owner, readers, .. } => {
                owner.is_none() && (!write || readers.is_empty())
            }
            _ => true,
        },
        rt::OpKind::Join { target } => st.threads[target as usize].finished,
        _ => true,
    }
}

fn run_one(
    builder: &Builder,
    f: &Arc<dyn Fn() + Send + Sync>,
    path: &mut Vec<Branch>,
    schedule_no: usize,
) {
    let exec = Arc::new(Execution::new(builder.max_steps, builder.max_threads));
    rt::with_state(&exec, |st| {
        st.threads.push(rt::ThreadState::default());
        st.threads[0].pending = Some(START_OP);
    });
    let root: rt::ThreadBody = {
        let f = f.clone();
        Box::new(move || {
            f();
            Box::new(()) as Box<dyn Any + Send>
        })
    };
    let handle = rt::spawn_os_thread(exec.clone(), 0, root);
    rt::with_state(&exec, |st| st.os_handles.push(handle));

    let mut step_idx = 0usize;
    let mut preemptions = 0usize;
    let mut prev: Option<usize> = None;
    let outcome = loop {
        let mut st = exec.lock();
        // Wait for quiescence: every live thread parked on its next op.
        let quiesced = loop {
            if st.abort {
                break false;
            }
            if st.granted.is_none() && st.threads.iter().all(|t| t.finished || t.pending.is_some())
            {
                break true;
            }
            st = exec.wait_state(st);
        };
        if !quiesced {
            break Outcome::Abort;
        }
        if st.threads.iter().all(|t| t.finished) {
            break Outcome::Done;
        }
        let enabled: Vec<usize> = (0..st.threads.len())
            .filter(|&t| is_enabled(&st, t))
            .collect();
        if enabled.is_empty() {
            let blocked: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.finished)
                .map(|(i, t)| format!("t{i} blocked on {:?}", t.pending.map(|o| o.kind)))
                .collect();
            st.abort = true;
            exec.notify();
            break Outcome::Failed(format!("deadlock: {}", blocked.join("; ")));
        }
        // Candidate order: the previous thread first (run-to-completion
        // default), then non-yielding threads by id, yielding threads last.
        let mut candidates = enabled.clone();
        candidates.sort_by_key(|&t| {
            let is_prev = Some(t) == prev && !st.threads[t].yielded;
            (!is_prev, st.threads[t].yielded, t)
        });
        let preempt_against = match prev {
            Some(p) if !st.threads[p].finished && !st.threads[p].yielded && is_enabled(&st, p) => {
                Some(p)
            }
            _ => None,
        };
        let chosen = if step_idx < path.len() {
            let c = path[step_idx].chosen;
            if !enabled.contains(&c) {
                st.abort = true;
                exec.notify();
                break Outcome::Failed(format!(
                    "schedule replay diverged at step {step_idx} (t{c} not enabled) — the \
                     model is nondeterministic; avoid wall-clock or random input in model()"
                ));
            }
            c
        } else {
            let default = candidates[0];
            path.push(Branch {
                chosen: default,
                alternatives: Vec::new(),
                done: Vec::new(),
                enabled: enabled.clone(),
                preempt_against,
                preemptions,
            });
            default
        };
        // DPOR backward update: the op about to run marks the most recent
        // earlier conflicting step; re-exploring that decision with this
        // thread instead eventually realizes the reversed order.
        let op_q = st.threads[chosen]
            .pending
            .expect("chosen thread has pending op");
        // For a lock acquisition the meaningful reversal point is the other
        // thread's *acquisition* (running this thread before the whole
        // critical section), not the matching release — which could never be
        // reordered before its own acquire anyway.
        let relevant = |p_op: &rt::Op| {
            p_op.conflicts(&op_q)
                && (!matches!(op_q.kind, rt::OpKind::LockAcquire { .. })
                    || matches!(p_op.kind, rt::OpKind::LockAcquire { .. }))
        };
        for i in (0..step_idx).rev() {
            let (p_tid, p_op) = st.trace[i];
            if p_tid != chosen && relevant(&p_op) {
                let branch = &mut path[i];
                let to_add: Vec<usize> = if branch.enabled.contains(&chosen) {
                    vec![chosen]
                } else {
                    branch.enabled.clone()
                };
                for u in to_add {
                    let costs = branch.preempt_against.is_some_and(|p| p != u);
                    let within = match builder.preemption_bound {
                        None => true,
                        Some(bound) => !costs || branch.preemptions < bound,
                    };
                    if u != branch.chosen
                        && within
                        && !branch.done.contains(&u)
                        && !branch.alternatives.contains(&u)
                    {
                        branch.alternatives.push(u);
                    }
                }
                break;
            }
        }
        if preempt_against.is_some_and(|p| p != chosen) {
            preemptions += 1;
        }
        step_idx += 1;
        prev = Some(chosen);
        st.granted = Some(chosen);
        exec.notify();
        drop(st);
    };

    // Teardown: wake and collect every OS thread before reporting.
    rt::with_state(&exec, |st| {
        if !matches!(outcome, Outcome::Done) {
            st.abort = true;
            st.granted = None;
        }
    });
    exec.notify();
    loop {
        let handle = rt::with_state(&exec, |st| st.os_handles.pop());
        match handle {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }

    match outcome {
        Outcome::Done => {}
        Outcome::Abort => {
            let (payload, failure, trace) = rt::with_state(&exec, |st| {
                (
                    st.panic_payload.take(),
                    st.failure.take(),
                    std::mem::take(&mut st.trace),
                )
            });
            eprintln!("{}", rt::render_trace(schedule_no, &trace));
            match payload {
                Some(p) => {
                    if let Some(mf) = p.downcast_ref::<ModelFailure>() {
                        panic!("loom (shim): {} (schedule #{schedule_no})", mf.0);
                    }
                    std::panic::resume_unwind(p);
                }
                None => panic!(
                    "loom (shim): {} (schedule #{schedule_no})",
                    failure.unwrap_or_else(|| "model aborted".to_string())
                ),
            }
        }
        Outcome::Failed(msg) => {
            let trace = rt::with_state(&exec, |st| std::mem::take(&mut st.trace));
            eprintln!("{}", rt::render_trace(schedule_no, &trace));
            panic!("loom (shim): {msg} (schedule #{schedule_no})");
        }
    }
}
