//! The execution runtime behind [`crate::model`]: real OS threads driven one
//! at a time by a controller, so that every visit to a loom primitive becomes
//! a *scheduling point* the explorer can branch on.
//!
//! Protocol: each model thread parks at every operation, publishing the `Op`
//! it is about to perform.  Once every live thread is parked the controller
//! knows the full frontier of pending operations, picks one thread (replaying
//! the DFS path prefix, then extending it), and grants it the right to run.
//! The granted thread applies its operation's effect under the state lock,
//! runs user code, and parks again at the next operation.  Exactly one model
//! thread is ever runnable, which is what makes `UnsafeCell` access sound.
//!
//! Happens-before is tracked with vector clocks: lock releases and `Release`
//! stores publish the releasing thread's clock; lock acquires and `Acquire`
//! loads join it.  Atomic *values* follow sequentially-consistent semantics
//! (one current value per atomic); weak orderings therefore surface as
//! happens-before **data races on `UnsafeCell` data**, not as stale atomic
//! reads — which is exactly how the dropped-`Acquire` self-test is caught.

use std::any::Any;
use std::cell::RefCell;
use std::panic::panic_any;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once};

/// Sentinel object id for operations that touch no shared object.
pub(crate) const NO_OBJ: u32 = u32::MAX;

/// Payload used to unwind parked threads during teardown of an aborted
/// execution.  The panic hook suppresses its report.
pub(crate) struct AbortToken;

/// Payload carrying a checker-detected failure (data race, deadlock trace,
/// step budget) from a model thread to the controller, which re-raises it
/// with the schedule attached.
pub(crate) struct ModelFailure(pub(crate) String);

/// What one scheduling step is about to do, in just enough detail for the
/// explorer to compute conflicts, enabledness, and a readable trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// First step of a thread (spawn barrier); no shared effect.
    Start,
    /// Voluntary `yield_now`; deprioritized by the scheduler.
    Yield,
    AtomicLoad,
    AtomicStore,
    /// Read-modify-write, including both arms of compare_exchange.
    AtomicRmw,
    LockAcquire {
        write: bool,
    },
    LockRelease {
        write: bool,
    },
    CellRead,
    CellWrite,
    /// Join on the model thread with the given id; enabled once it finishes.
    Join {
        target: u32,
    },
}

#[derive(Clone, Copy, Debug)]
pub(crate) struct Op {
    pub(crate) obj: u32,
    pub(crate) kind: OpKind,
    pub(crate) ord: Option<Ordering>,
}

pub(crate) const START_OP: Op = Op {
    obj: NO_OBJ,
    kind: OpKind::Start,
    ord: None,
};

impl Op {
    fn is_write(&self) -> bool {
        !matches!(
            self.kind,
            OpKind::AtomicLoad | OpKind::CellRead | OpKind::LockAcquire { write: false }
        )
    }

    /// Two pending ops conflict when they touch the same object and at least
    /// one mutates it — the only case where their order is observable.
    pub(crate) fn conflicts(&self, other: &Op) -> bool {
        self.obj != NO_OBJ && self.obj == other.obj && (self.is_write() || other.is_write())
    }

    fn describe(&self) -> String {
        let ord = self.ord.map(|o| format!(", {o:?}")).unwrap_or_default();
        match self.kind {
            OpKind::Start => "start".to_string(),
            OpKind::Yield => "yield_now".to_string(),
            OpKind::AtomicLoad => format!("atomic({}).load({})", self.obj, &ord[2..]),
            OpKind::AtomicStore => format!("atomic({}).store({})", self.obj, &ord[2..]),
            OpKind::AtomicRmw => format!("atomic({}).rmw({})", self.obj, &ord[2..]),
            OpKind::LockAcquire { write: true } => format!("lock({}).acquire", self.obj),
            OpKind::LockAcquire { write: false } => format!("lock({}).read_acquire", self.obj),
            OpKind::LockRelease { write: true } => format!("lock({}).release", self.obj),
            OpKind::LockRelease { write: false } => format!("lock({}).read_release", self.obj),
            OpKind::CellRead => format!("cell({}).read", self.obj),
            OpKind::CellWrite => format!("cell({}).write", self.obj),
            OpKind::Join { target } => format!("join(t{target})"),
        }
    }
}

/// A per-thread vector clock; component `t` counts thread `t`'s steps.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    fn ensure(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
    }

    fn bump(&mut self, tid: usize) -> u32 {
        self.ensure(tid);
        self.0[tid] += 1;
        self.0[tid]
    }

    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }
}

/// Registry slot for one shared object created inside the model.
#[derive(Debug)]
pub(crate) enum ObjState {
    Atomic {
        value: u64,
        /// Clock published by the last release-store (release sequence); an
        /// acquire-load joins it.  `None` after a relaxed overwrite.
        msg: Option<VClock>,
    },
    Lock {
        owner: Option<usize>,
        readers: Vec<usize>,
        /// Clock of the last write-release.
        clock: VClock,
        /// Join of all read-releases since the last write-release.
        readers_clock: VClock,
    },
    Cell {
        /// Last unsynchronized write: (thread, that thread's step epoch).
        last_write: Option<(usize, u32)>,
        /// Reads since the last write: (thread, epoch) per reader.
        reads: Vec<(usize, u32)>,
    },
}

impl ObjState {
    pub(crate) fn new_atomic(value: u64) -> ObjState {
        ObjState::Atomic { value, msg: None }
    }

    pub(crate) fn new_lock() -> ObjState {
        ObjState::Lock {
            owner: None,
            readers: Vec::new(),
            clock: VClock::default(),
            readers_clock: VClock::default(),
        }
    }

    pub(crate) fn new_cell() -> ObjState {
        ObjState::Cell {
            last_write: None,
            reads: Vec::new(),
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct ThreadState {
    pub(crate) clock: VClock,
    /// The operation this thread is parked on, if parked.
    pub(crate) pending: Option<Op>,
    pub(crate) finished: bool,
    /// Set while parked on a voluntary yield; the scheduler deprioritizes it.
    pub(crate) yielded: bool,
    result: Option<Box<dyn Any + Send>>,
}

pub(crate) struct ExecState {
    pub(crate) threads: Vec<ThreadState>,
    pub(crate) objects: Vec<ObjState>,
    /// Thread currently granted the right to run, if any.
    pub(crate) granted: Option<usize>,
    pub(crate) abort: bool,
    pub(crate) failure: Option<String>,
    pub(crate) panic_payload: Option<Box<dyn Any + Send>>,
    pub(crate) trace: Vec<(usize, Op)>,
    pub(crate) steps: usize,
    max_steps: usize,
    max_threads: usize,
    pub(crate) os_handles: Vec<std::thread::JoinHandle<()>>,
}

/// One schedule's worth of shared execution state.
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    cv: Condvar,
}

impl Execution {
    pub(crate) fn new(max_steps: usize, max_threads: usize) -> Execution {
        Execution {
            state: StdMutex::new(ExecState {
                threads: Vec::new(),
                objects: Vec::new(),
                granted: None,
                abort: false,
                failure: None,
                panic_payload: None,
                trace: Vec::new(),
                steps: 0,
                max_steps,
                max_threads,
                os_handles: Vec::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Lock the state, recovering from poison: model threads panic on purpose
    /// (failure propagation, teardown) while other threads still need state.
    pub(crate) fn lock(&self) -> StdMutexGuard<'_, ExecState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    pub(crate) fn notify(&self) {
        self.cv.notify_all();
    }

    pub(crate) fn wait_state<'a>(
        &self,
        guard: StdMutexGuard<'a, ExecState>,
    ) -> StdMutexGuard<'a, ExecState> {
        self.cv
            .wait(guard)
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

pub(crate) fn with_state<R>(exec: &Execution, f: impl FnOnce(&mut ExecState) -> R) -> R {
    let mut st = exec.lock();
    f(&mut st)
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

fn current_ctx() -> (Arc<Execution>, usize) {
    CURRENT.with(|c| c.borrow().clone()).expect(
        "loom (shim): model primitives (Mutex, RwLock, atomics, UnsafeCell, thread) \
         may only be used inside loom::model(|| ..)",
    )
}

/// Handle to a registered shared object, pinned to its execution.
pub(crate) struct ObjRef {
    exec: Arc<Execution>,
    pub(crate) id: u32,
}

impl std::fmt::Debug for ObjRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ObjRef({})", self.id)
    }
}

impl ObjRef {
    pub(crate) fn register(state: ObjState) -> ObjRef {
        let (exec, _tid) = current_ctx();
        let id = with_state(&exec, |st| {
            st.objects.push(state);
            (st.objects.len() - 1) as u32
        });
        ObjRef { exec, id }
    }

    /// The current thread's context, checked to belong to this object's
    /// execution (catches objects leaked across `model()` invocations).
    fn ctx(&self) -> (Arc<Execution>, usize) {
        let (exec, tid) = current_ctx();
        assert!(
            Arc::ptr_eq(&exec, &self.exec),
            "loom (shim): object used outside the execution that created it \
             (do not leak loom types across model() iterations)"
        );
        (exec, tid)
    }
}

/// Abort the execution with a checker-detected failure and unwind.
fn fail(exec: &Execution, mut st: StdMutexGuard<'_, ExecState>, msg: String) -> ! {
    st.abort = true;
    if st.failure.is_none() {
        st.failure = Some(msg.clone());
    }
    exec.notify();
    drop(st);
    panic_any(ModelFailure(msg));
}

/// Park the current thread on `op` and block until the controller grants it.
///
/// Returns `false` when the operation's effect must be skipped: either the
/// thread is already unwinding (guard drops during panic teardown) — in which
/// case nothing is scheduled — or `true` after the grant, with the step
/// recorded (clock bumped, trace appended, budget charged).
fn park_until_granted(exec: &Execution, tid: usize, op: Op, voluntary: bool) -> bool {
    if std::thread::panicking() {
        return false;
    }
    let mut st = exec.lock();
    if st.abort {
        drop(st);
        panic_any(AbortToken);
    }
    st.threads[tid].pending = Some(op);
    st.threads[tid].yielded = voluntary;
    exec.notify();
    loop {
        if st.abort {
            st.threads[tid].pending = None;
            exec.notify();
            drop(st);
            panic_any(AbortToken);
        }
        if st.granted == Some(tid) {
            break;
        }
        st = exec.wait_state(st);
    }
    st.granted = None;
    st.threads[tid].pending = None;
    st.threads[tid].yielded = false;
    st.threads[tid].clock.bump(tid);
    st.steps += 1;
    st.trace.push((tid, op));
    if st.steps > st.max_steps {
        let msg = format!(
            "step budget of {} exceeded — possible livelock; put loom::thread::yield_now() \
             in spin loops or raise Builder::max_steps",
            st.max_steps
        );
        fail(exec, st, msg);
    }
    true
}

// ordering: shim-internal classifier mapping each std ordering onto the
// vector-clock model; it must enumerate the non-SeqCst variants by name.
fn acquires(ord: Ordering) -> bool {
    // ordering: Acquire/AcqRel/SeqCst all join the publisher's clock.
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

// ordering: shim-internal classifier, see `acquires`.
fn releases(ord: Ordering) -> bool {
    // ordering: Release/AcqRel/SeqCst all publish the writer's clock.
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn atomic_parts(st: &mut ExecState, id: u32) -> (&mut u64, &mut Option<VClock>) {
    match &mut st.objects[id as usize] {
        ObjState::Atomic { value, msg } => (value, msg),
        other => panic!("loom (shim): object {id} is not an atomic: {other:?}"),
    }
}

pub(crate) fn atomic_load(obj: &ObjRef, ord: Ordering) -> u64 {
    let (exec, tid) = obj.ctx();
    let op = Op {
        obj: obj.id,
        kind: OpKind::AtomicLoad,
        ord: Some(ord),
    };
    if !park_until_granted(&exec, tid, op, false) {
        return with_state(&exec, |st| *atomic_parts(st, obj.id).0);
    }
    with_state(&exec, |st| {
        let (value, msg) = atomic_parts(st, obj.id);
        let (value, msg) = (*value, msg.clone());
        if acquires(ord) {
            if let Some(m) = msg {
                st.threads[tid].clock.join(&m);
            }
        }
        value
    })
}

pub(crate) fn atomic_store(obj: &ObjRef, val: u64, ord: Ordering) {
    let (exec, tid) = obj.ctx();
    let op = Op {
        obj: obj.id,
        kind: OpKind::AtomicStore,
        ord: Some(ord),
    };
    if !park_until_granted(&exec, tid, op, false) {
        return;
    }
    with_state(&exec, |st| {
        let new_msg = if releases(ord) {
            Some(st.threads[tid].clock.clone())
        } else {
            None
        };
        let (value, msg) = atomic_parts(st, obj.id);
        *value = val;
        *msg = new_msg;
    });
}

pub(crate) fn atomic_rmw(obj: &ObjRef, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
    let (exec, tid) = obj.ctx();
    let op = Op {
        obj: obj.id,
        kind: OpKind::AtomicRmw,
        ord: Some(ord),
    };
    if !park_until_granted(&exec, tid, op, false) {
        return with_state(&exec, |st| *atomic_parts(st, obj.id).0);
    }
    with_state(&exec, |st| {
        let (value, msg) = atomic_parts(st, obj.id);
        let (old, old_msg) = (*value, msg.clone());
        if acquires(ord) {
            if let Some(m) = &old_msg {
                st.threads[tid].clock.join(m);
            }
        }
        // A release RMW continues the release sequence: the new message joins
        // the previous publisher's clock with this thread's.
        let new_msg = if releases(ord) {
            let mut m = old_msg.unwrap_or_default();
            m.join(&st.threads[tid].clock);
            Some(m)
        } else {
            old_msg
        };
        let (value, msg) = atomic_parts(st, obj.id);
        *value = f(old);
        *msg = new_msg;
        old
    })
}

pub(crate) fn atomic_cas(
    obj: &ObjRef,
    current: u64,
    new: u64,
    success: Ordering,
    failure: Ordering,
) -> Result<u64, u64> {
    let (exec, tid) = obj.ctx();
    let op = Op {
        obj: obj.id,
        kind: OpKind::AtomicRmw,
        ord: Some(success),
    };
    if !park_until_granted(&exec, tid, op, false) {
        return Err(with_state(&exec, |st| *atomic_parts(st, obj.id).0));
    }
    with_state(&exec, |st| {
        let (value, msg) = atomic_parts(st, obj.id);
        let (old, old_msg) = (*value, msg.clone());
        if old == current {
            if acquires(success) {
                if let Some(m) = &old_msg {
                    st.threads[tid].clock.join(m);
                }
            }
            let new_msg = if releases(success) {
                let mut m = old_msg.unwrap_or_default();
                m.join(&st.threads[tid].clock);
                Some(m)
            } else {
                old_msg
            };
            let (value, msg) = atomic_parts(st, obj.id);
            *value = new;
            *msg = new_msg;
            Ok(old)
        } else {
            if acquires(failure) {
                if let Some(m) = &old_msg {
                    st.threads[tid].clock.join(m);
                }
            }
            Err(old)
        }
    })
}

pub(crate) fn lock_acquire(obj: &ObjRef, write: bool) {
    let (exec, tid) = obj.ctx();
    let op = Op {
        obj: obj.id,
        kind: OpKind::LockAcquire { write },
        ord: None,
    };
    if !park_until_granted(&exec, tid, op, false) {
        return;
    }
    with_state(&exec, |st| {
        let (lock_clock, readers_clock) = match &mut st.objects[obj.id as usize] {
            ObjState::Lock {
                owner,
                readers,
                clock,
                readers_clock,
            } => {
                if write {
                    debug_assert!(owner.is_none() && readers.is_empty());
                    *owner = Some(tid);
                    (clock.clone(), Some(readers_clock.clone()))
                } else {
                    debug_assert!(owner.is_none());
                    readers.push(tid);
                    (clock.clone(), None)
                }
            }
            other => panic!("loom (shim): object {} is not a lock: {other:?}", obj.id),
        };
        st.threads[tid].clock.join(&lock_clock);
        if let Some(rc) = readers_clock {
            st.threads[tid].clock.join(&rc);
        }
    });
}

pub(crate) fn lock_release(obj: &ObjRef, write: bool) {
    let (exec, tid) = obj.ctx();
    let op = Op {
        obj: obj.id,
        kind: OpKind::LockRelease { write },
        ord: None,
    };
    if !park_until_granted(&exec, tid, op, false) {
        return;
    }
    with_state(&exec, |st| {
        let thr_clock = st.threads[tid].clock.clone();
        match &mut st.objects[obj.id as usize] {
            ObjState::Lock {
                owner,
                readers,
                clock,
                readers_clock,
            } => {
                if write {
                    debug_assert_eq!(*owner, Some(tid));
                    *owner = None;
                    *clock = thr_clock;
                    *readers_clock = VClock::default();
                } else {
                    readers.retain(|r| *r != tid);
                    readers_clock.join(&thr_clock);
                }
            }
            other => panic!("loom (shim): object {} is not a lock: {other:?}", obj.id),
        }
    });
}

pub(crate) fn cell_access(obj: &ObjRef, write: bool) {
    let (exec, tid) = obj.ctx();
    let op = Op {
        obj: obj.id,
        kind: if write {
            OpKind::CellWrite
        } else {
            OpKind::CellRead
        },
        ord: None,
    };
    if !park_until_granted(&exec, tid, op, false) {
        return;
    }
    let mut st = exec.lock();
    let me_clock = st.threads[tid].clock.clone();
    let my_epoch = me_clock.get(tid);
    let racer = match &mut st.objects[obj.id as usize] {
        ObjState::Cell { last_write, reads } => {
            let mut racer: Option<(usize, &'static str)> = None;
            if let Some((w_tid, w_clk)) = *last_write {
                if w_tid != tid && me_clock.get(w_tid) < w_clk {
                    racer = Some((w_tid, "write"));
                }
            }
            if write {
                if racer.is_none() {
                    for &(r_tid, r_clk) in reads.iter() {
                        if r_tid != tid && me_clock.get(r_tid) < r_clk {
                            racer = Some((r_tid, "read"));
                            break;
                        }
                    }
                }
                if racer.is_none() {
                    *last_write = Some((tid, my_epoch));
                    reads.clear();
                }
            } else if racer.is_none() {
                match reads.iter_mut().find(|e| e.0 == tid) {
                    Some(entry) => entry.1 = my_epoch,
                    None => reads.push((tid, my_epoch)),
                }
            }
            racer
        }
        other => panic!("loom (shim): object {} is not a cell: {other:?}", obj.id),
    };
    if let Some((other, what)) = racer {
        let msg = format!(
            "data race: unsynchronized {} of UnsafeCell({}) by thread t{tid} is \
             concurrent with an earlier {what} by t{other} (no happens-before edge)",
            if write { "write" } else { "read" },
            obj.id,
        );
        fail(&exec, st, msg);
    }
}

pub(crate) fn yield_now() {
    let (exec, tid) = current_ctx();
    let op = Op {
        obj: NO_OBJ,
        kind: OpKind::Yield,
        ord: None,
    };
    park_until_granted(&exec, tid, op, true);
}

pub(crate) type ThreadBody = Box<dyn FnOnce() -> Box<dyn Any + Send> + Send + 'static>;

/// Register a new model thread and start its OS thread; the child parks on a
/// `Start` op until the scheduler lets it run.  Returns the model thread id.
pub(crate) fn spawn_thread(body: ThreadBody) -> usize {
    let (exec, me) = current_ctx();
    let tid = {
        let mut st = exec.lock();
        if st.threads.len() >= st.max_threads {
            let max = st.max_threads;
            let msg = format!(
                "model spawned more than max_threads ({max}) threads; raise Builder::max_threads"
            );
            fail(&exec, st, msg);
        }
        let tid = st.threads.len();
        let clock = st.threads[me].clock.clone();
        st.threads.push(ThreadState {
            clock,
            pending: Some(START_OP),
            ..ThreadState::default()
        });
        exec.notify();
        tid
    };
    let handle = spawn_os_thread(exec.clone(), tid, body);
    with_state(&exec, |st| st.os_handles.push(handle));
    tid
}

/// Join a model thread: blocks (as a scheduling point) until it finishes,
/// joins its final clock, and takes its result.  `None` during teardown.
pub(crate) fn join_thread(target: usize) -> Option<Box<dyn Any + Send>> {
    let (exec, tid) = current_ctx();
    let op = Op {
        obj: NO_OBJ,
        kind: OpKind::Join {
            target: target as u32,
        },
        ord: None,
    };
    if !park_until_granted(&exec, tid, op, false) {
        return None;
    }
    with_state(&exec, |st| {
        let t_clock = st.threads[target].clock.clone();
        st.threads[tid].clock.join(&t_clock);
        Some(
            st.threads[target]
                .result
                .take()
                .expect("loom (shim): thread joined twice"),
        )
    })
}

/// Block the brand-new thread until its `Start` op is granted.
fn wait_for_start(exec: &Execution, tid: usize) -> bool {
    let mut st = exec.lock();
    loop {
        if st.abort {
            st.threads[tid].pending = None;
            exec.notify();
            return false;
        }
        if st.granted == Some(tid) {
            break;
        }
        st = exec.wait_state(st);
    }
    st.granted = None;
    st.threads[tid].pending = None;
    st.threads[tid].clock.bump(tid);
    st.steps += 1;
    st.trace.push((tid, START_OP));
    true
}

pub(crate) fn spawn_os_thread(
    exec: Arc<Execution>,
    tid: usize,
    body: ThreadBody,
) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        CURRENT.with(|c| *c.borrow_mut() = Some((exec.clone(), tid)));
        let result = if wait_for_start(&exec, tid) {
            Some(std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)))
        } else {
            None
        };
        let mut st = exec.lock();
        match result {
            Some(Ok(value)) => st.threads[tid].result = Some(value),
            Some(Err(payload)) => {
                if !payload.is::<AbortToken>() && st.panic_payload.is_none() && st.failure.is_none()
                {
                    st.failure = Some(format!("thread t{tid} panicked"));
                    st.panic_payload = Some(payload);
                }
                st.abort = true;
            }
            None => {}
        }
        st.threads[tid].finished = true;
        st.threads[tid].pending = None;
        exec.notify();
        drop(st);
        CURRENT.with(|c| *c.borrow_mut() = None);
    })
}

/// Install (once, process-wide) a panic hook that silences the shim's
/// internal control-flow panics; user panics still report normally.
pub(crate) fn install_quiet_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            if payload.is::<AbortToken>() || payload.is::<ModelFailure>() {
                return;
            }
            prev(info);
        }));
    });
}

/// Render the failing schedule for deterministic replay by the user.
pub(crate) fn render_trace(schedule_no: usize, trace: &[(usize, Op)]) -> String {
    const SHOWN: usize = 200;
    let mut out = format!("loom (shim): failing schedule #{schedule_no} (deterministic replay):\n");
    for (i, (tid, op)) in trace.iter().enumerate().take(SHOWN) {
        out.push_str(&format!("  step {i:>3}: t{tid} {}\n", op.describe()));
    }
    if trace.len() > SHOWN {
        out.push_str(&format!("  .. {} more steps\n", trace.len() - SHOWN));
    }
    out
}
