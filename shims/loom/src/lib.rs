//! Offline shim of the [`loom`](https://docs.rs/loom) concurrency model
//! checker (see `shims/README.md`): an API-compatible subset whose
//! cooperative scheduler **exhaustively enumerates thread interleavings**
//! of the closure passed to [`model()`].
//!
//! What is explored and detected:
//!
//! - every conflict-distinct interleaving of operations on loom types
//!   ([`sync::Mutex`], [`sync::RwLock`], [`sync::atomic`], [`cell::UnsafeCell`],
//!   [`thread::spawn`]/join), pruned DPOR-style (schedules differing only in
//!   the order of non-conflicting steps are visited once) and optionally
//!   preemption-bounded ([`Builder::preemption_bound`]);
//! - happens-before **data races** on [`cell::UnsafeCell`] data, via vector
//!   clocks threaded through lock release/acquire and atomic Release/Acquire
//!   edges — a store that drops `Release` (or a load that drops `Acquire`)
//!   loses the edge and the racing cell access is reported;
//! - **deadlocks** (all live threads blocked) and **livelocks** (per-schedule
//!   step budget), with a deterministic failing-schedule printout;
//! - runaway state spaces: exceeding [`Builder::max_branches`] schedules
//!   fails loudly ("exploration truncated") instead of passing on a partial
//!   search, keeping CI time bounded and flake-free.
//!
//! Documented divergences from upstream loom: `SeqCst` is modeled as
//! `AcqRel` per location (atomic values are sequentially consistent anyway —
//! there is one current value per atomic — but no *global* SC order edge is
//! added); [`sync::Arc`] is `std::sync::Arc` (reference counting itself is
//! not modeled); `Mutex::lock`/`RwLock::read`/`write` return guards directly
//! (parking_lot style, matching this repo's `cfg(df_check)` call sites);
//! `compare_exchange_weak` never fails spuriously.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cell;
pub mod model;
pub(crate) mod rt;
pub mod sync;
pub mod thread;

pub use model::Builder;

/// Run `f` under the model checker with default limits, exploring every
/// conflict-distinct interleaving of its threads.  Panics (with a replayable
/// schedule trace on stderr) if any interleaving panics, data-races,
/// deadlocks, or exceeds the exploration limits.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f)
}
