//! Model-checked counterparts of the `std::sync` / `parking_lot` types used
//! by this repo: `Mutex`, `RwLock`, and the `atomic` module.  Lock methods
//! return guards directly (parking_lot style, no poison), so the
//! `cfg(df_check)` indirection modules in df-rs/df-proto swap types without
//! touching call sites.

use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

use crate::rt::{self, ObjRef, ObjState};

pub use std::sync::Arc;

pub mod atomic {
    //! Model-checked atomics.  Values are sequentially consistent (one
    //! current value per atomic); orderings drive the happens-before edges
    //! used for `UnsafeCell` race detection.

    use super::{ObjRef, ObjState};
    use crate::rt;

    pub use std::sync::atomic::Ordering;

    macro_rules! int_atomic {
        ($name:ident, $ty:ty) => {
            /// Model-checked counterpart of the same-named `std` atomic.
            pub struct $name {
                obj: ObjRef,
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    f.debug_struct(stringify!($name)).finish_non_exhaustive()
                }
            }

            impl $name {
                /// Create the atomic; must be called inside `loom::model`.
                pub fn new(value: $ty) -> $name {
                    $name {
                        obj: ObjRef::register(ObjState::new_atomic(value as u64)),
                    }
                }

                /// Load the current value.
                pub fn load(&self, ord: Ordering) -> $ty {
                    rt::atomic_load(&self.obj, ord) as $ty
                }

                /// Store a new value.
                pub fn store(&self, value: $ty, ord: Ordering) {
                    rt::atomic_store(&self.obj, value as u64, ord)
                }

                /// Swap in a new value, returning the previous one.
                pub fn swap(&self, value: $ty, ord: Ordering) -> $ty {
                    rt::atomic_rmw(&self.obj, ord, |_| value as u64) as $ty
                }

                /// Add, returning the previous value (wrapping).
                pub fn fetch_add(&self, value: $ty, ord: Ordering) -> $ty {
                    rt::atomic_rmw(&self.obj, ord, |old| {
                        (old as $ty).wrapping_add(value) as u64
                    }) as $ty
                }

                /// Subtract, returning the previous value (wrapping).
                pub fn fetch_sub(&self, value: $ty, ord: Ordering) -> $ty {
                    rt::atomic_rmw(&self.obj, ord, |old| {
                        (old as $ty).wrapping_sub(value) as u64
                    }) as $ty
                }

                /// Bitwise AND, returning the previous value.
                pub fn fetch_and(&self, value: $ty, ord: Ordering) -> $ty {
                    rt::atomic_rmw(&self.obj, ord, |old| ((old as $ty) & value) as u64) as $ty
                }

                /// Bitwise OR, returning the previous value.
                pub fn fetch_or(&self, value: $ty, ord: Ordering) -> $ty {
                    rt::atomic_rmw(&self.obj, ord, |old| ((old as $ty) | value) as u64) as $ty
                }

                /// Bitwise XOR, returning the previous value.
                pub fn fetch_xor(&self, value: $ty, ord: Ordering) -> $ty {
                    rt::atomic_rmw(&self.obj, ord, |old| ((old as $ty) ^ value) as u64) as $ty
                }

                /// Compare-and-exchange; both arms are modeled as RMW steps.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    rt::atomic_cas(&self.obj, current as u64, new as u64, success, failure)
                        .map(|v| v as $ty)
                        .map_err(|v| v as $ty)
                }

                /// Like [`compare_exchange`](Self::compare_exchange); the shim
                /// never fails spuriously.
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    int_atomic!(AtomicUsize, usize);
    int_atomic!(AtomicU64, u64);
    int_atomic!(AtomicU32, u32);

    /// Model-checked counterpart of `std::sync::atomic::AtomicBool`.
    pub struct AtomicBool {
        obj: ObjRef,
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("AtomicBool").finish_non_exhaustive()
        }
    }

    impl AtomicBool {
        /// Create the atomic; must be called inside `loom::model`.
        pub fn new(value: bool) -> AtomicBool {
            AtomicBool {
                obj: ObjRef::register(ObjState::new_atomic(value as u64)),
            }
        }

        /// Load the current value.
        pub fn load(&self, ord: Ordering) -> bool {
            rt::atomic_load(&self.obj, ord) != 0
        }

        /// Store a new value.
        pub fn store(&self, value: bool, ord: Ordering) {
            rt::atomic_store(&self.obj, value as u64, ord)
        }

        /// Swap in a new value, returning the previous one.
        pub fn swap(&self, value: bool, ord: Ordering) -> bool {
            rt::atomic_rmw(&self.obj, ord, |_| value as u64) != 0
        }

        /// Bitwise OR, returning the previous value.
        pub fn fetch_or(&self, value: bool, ord: Ordering) -> bool {
            rt::atomic_rmw(&self.obj, ord, |old| (old != 0 || value) as u64) != 0
        }

        /// Bitwise AND, returning the previous value.
        pub fn fetch_and(&self, value: bool, ord: Ordering) -> bool {
            rt::atomic_rmw(&self.obj, ord, |old| (old != 0 && value) as u64) != 0
        }

        /// Compare-and-exchange; both arms are modeled as RMW steps.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            rt::atomic_cas(&self.obj, current as u64, new as u64, success, failure)
                .map(|v| v != 0)
                .map_err(|v| v != 0)
        }
    }
}

/// Model-checked mutual-exclusion lock; `lock` returns the guard directly
/// (parking_lot style) and blocks as a scheduling point.
pub struct Mutex<T: ?Sized> {
    obj: ObjRef,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: the model scheduler serializes all threads and only grants a lock
// acquisition when the lock is free, so the inner data is never aliased
// mutably; `T: Send` keeps the payload transferable between model threads.
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
// SAFETY: see the `Send` impl above — `&Mutex<T>` only exposes the data
// through guards whose exclusivity the scheduler enforces.
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

impl<T: ?Sized> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T> Mutex<T> {
    /// Create the lock; must be called inside `loom::model`.
    pub fn new(data: T) -> Mutex<T> {
        Mutex {
            obj: ObjRef::register(ObjState::new_lock()),
            data: std::cell::UnsafeCell::new(data),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking (as a scheduling point) until free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        rt::lock_acquire(&self.obj, true);
        MutexGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }
}

/// Guard returned by [`Mutex::lock`]; releases (a scheduling point) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
    _not_send: PhantomData<*const ()>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: this guard witnesses exclusive model-level ownership of the
        // lock; the scheduler never grants a second acquisition while it
        // lives, so no aliasing &mut exists.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: see `Deref` — exclusive ownership is scheduler-enforced.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        rt::lock_release(&self.lock.obj, true);
    }
}

/// Model-checked reader-writer lock; `read`/`write` return guards directly
/// (parking_lot style) and block as scheduling points.
pub struct RwLock<T: ?Sized> {
    obj: ObjRef,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: as for `Mutex` — the scheduler enforces the reader/writer
// exclusion protocol, so writers are exclusive and readers only alias
// immutably; `T: Send` keeps the payload transferable.  (`T: Sync` is not
// required because reads are serialized by the scheduler anyway, matching
// loom's modeling rather than std's bounds.)
unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
// SAFETY: see the `Send` impl above.
unsafe impl<T: ?Sized + Send> Sync for RwLock<T> {}

impl<T: ?Sized> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T> RwLock<T> {
    /// Create the lock; must be called inside `loom::model`.
    pub fn new(data: T) -> RwLock<T> {
        RwLock {
            obj: ObjRef::register(ObjState::new_lock()),
            data: std::cell::UnsafeCell::new(data),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock (a scheduling point).
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        rt::lock_acquire(&self.obj, false);
        RwLockReadGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }

    /// Acquire the exclusive write lock (a scheduling point).
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        rt::lock_acquire(&self.obj, true);
        RwLockWriteGuard {
            lock: self,
            _not_send: PhantomData,
        }
    }
}

/// Shared guard returned by [`RwLock::read`]; releases on drop.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    _not_send: PhantomData<*const ()>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: read guards coexist only with other read guards; the
        // scheduler blocks writers while any live, so only shared aliasing.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        rt::lock_release(&self.lock.obj, false);
    }
}

/// Exclusive guard returned by [`RwLock::write`]; releases on drop.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    _not_send: PhantomData<*const ()>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        // SAFETY: the write guard witnesses scheduler-enforced exclusivity.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: see `Deref` — exclusivity is scheduler-enforced.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        rt::lock_release(&self.lock.obj, true);
    }
}
