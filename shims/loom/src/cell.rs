//! Model-checked counterpart of `std::cell::UnsafeCell`: every access is a
//! scheduling point checked for happens-before data races.

use crate::rt::{self, ObjRef, ObjState};

/// An unsynchronized cell whose accesses are race-checked by the model.
///
/// A read (`with`) and a write (`with_mut`) from different threads without a
/// happens-before edge between them (via a lock or an Acquire/Release atomic
/// pair) fails the model with a "data race" diagnostic and a replayable
/// schedule.
#[derive(Debug)]
pub struct UnsafeCell<T: ?Sized> {
    obj: ObjRef,
    data: std::cell::UnsafeCell<T>,
}

// SAFETY: the model scheduler runs exactly one thread at a time and fails any
// schedule containing an unsynchronized concurrent access pair, so the cell's
// data is never touched from two OS threads simultaneously; `T: Send` bounds
// keep the payload transferable.
unsafe impl<T: ?Sized + Send> Send for UnsafeCell<T> {}
// SAFETY: see the `Send` impl above — shared references only hand out raw
// pointers whose dereference the model serializes and race-checks.
unsafe impl<T: ?Sized + Send> Sync for UnsafeCell<T> {}

impl<T> UnsafeCell<T> {
    /// Create a race-checked cell; must be called inside `loom::model`.
    pub fn new(data: T) -> UnsafeCell<T> {
        UnsafeCell {
            obj: ObjRef::register(ObjState::new_cell()),
            data: std::cell::UnsafeCell::new(data),
        }
    }

    /// Consume the cell, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> UnsafeCell<T> {
    /// Immutable access: records a read and hands the closure a const
    /// pointer.  Fails the model if the read races a concurrent write.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        rt::cell_access(&self.obj, false);
        f(self.data.get())
    }

    /// Mutable access: records a write and hands the closure a mut pointer.
    /// Fails the model if the write races any concurrent access.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        rt::cell_access(&self.obj, true);
        f(self.data.get())
    }
}
