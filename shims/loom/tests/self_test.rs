//! Self-tests proving the checker actually checks: seeded concurrency bugs
//! (a lost update without a lock; a publication with the `Acquire` edge
//! dropped) must be *caught*, their fixed counterparts must pass, and the
//! DPOR pruning / flake guards must behave as documented.

use loom::cell::UnsafeCell;
use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use loom::sync::{Arc, Mutex, RwLock};
use loom::thread;
use loom::Builder;

/// Seeded mutation #1: two unsynchronized read-modify-writes of a cell.  The
/// checker must find the interleaving where the accesses race.
#[test]
#[should_panic(expected = "data race")]
fn detects_lost_update() {
    loom::model(|| {
        let counter = Arc::new(UnsafeCell::new(0usize));
        let c2 = counter.clone();
        let t = thread::spawn(move || {
            c2.with_mut(|p| {
                // SAFETY: with_mut hands exclusive access under the model
                // scheduler; the *race* (not the deref) is the seeded bug.
                unsafe { *p += 1 }
            });
        });
        counter.with_mut(|p| {
            // SAFETY: as above — the model reports the racing pair.
            unsafe { *p += 1 }
        });
        t.join().unwrap();
    });
}

/// Seeded mutation #1b: the same lost update expressed as a split atomic
/// load/store increment — no data race, but the checker must reach the
/// interleaving where both threads read 0 and the final assert fails.
#[test]
#[should_panic(expected = "lost update")]
fn detects_lost_update_split_atomic() {
    loom::model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        let t = thread::spawn(move || {
            let v = c2.load(Ordering::SeqCst);
            c2.store(v + 1, Ordering::SeqCst);
        });
        let v = counter.load(Ordering::SeqCst);
        counter.store(v + 1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2, "lost update");
    });
}

/// The fixed counterpart of the lost update: a mutex serializes the RMW.
#[test]
fn mutex_prevents_lost_update() {
    loom::model(|| {
        let counter = Arc::new(Mutex::new(0usize));
        let c2 = counter.clone();
        let t = thread::spawn(move || {
            *c2.lock() += 1;
        });
        *counter.lock() += 1;
        t.join().unwrap();
        assert_eq!(*counter.lock(), 2);
    });
}

/// An atomic fetch_add is a single indivisible step; no update is lost.
#[test]
fn atomic_rmw_prevents_lost_update() {
    loom::model(|| {
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = counter.clone();
        let t = thread::spawn(move || {
            c2.fetch_add(1, Ordering::SeqCst);
        });
        counter.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    });
}

/// Seeded mutation #2: message-passing publication where the consumer drops
/// the `Acquire` edge (Relaxed load of the ready flag).  The data read then
/// has no happens-before edge to the write and must be reported as a race.
#[test]
#[should_panic(expected = "data race")]
fn detects_dropped_acquire() {
    loom::model(|| {
        let data = Arc::new(UnsafeCell::new(0usize));
        let ready = Arc::new(AtomicBool::new(false));
        let (d2, r2) = (data.clone(), ready.clone());
        let t = thread::spawn(move || {
            d2.with_mut(|p| {
                // SAFETY: exclusive access under the model scheduler.
                unsafe { *p = 42 }
            });
            // ordering: Release publishes the cell write; the bug is on the
            // consumer side.
            r2.store(true, Ordering::Release);
        });
        // ordering: deliberately WRONG — the seeded bug this test detects.
        if ready.load(Ordering::Relaxed) {
            let v = data.with(|p| {
                // SAFETY: shared read under the model scheduler; the missing
                // Acquire edge is what the checker must flag.
                unsafe { *p }
            });
            assert_eq!(v, 42);
        }
        t.join().unwrap();
    });
}

/// The fixed counterpart: Acquire pairs with the Release store, so the data
/// read is ordered after the write in every interleaving.
#[test]
fn acquire_release_publication_passes() {
    loom::model(|| {
        let data = Arc::new(UnsafeCell::new(0usize));
        let ready = Arc::new(AtomicBool::new(false));
        let (d2, r2) = (data.clone(), ready.clone());
        let t = thread::spawn(move || {
            d2.with_mut(|p| {
                // SAFETY: exclusive access under the model scheduler.
                unsafe { *p = 42 }
            });
            // ordering: Release publishes the cell write to the Acquire load
            // below.
            r2.store(true, Ordering::Release);
        });
        // ordering: Acquire pairs with the producer's Release store above.
        if ready.load(Ordering::Acquire) {
            let v = data.with(|p| {
                // SAFETY: the Acquire load orders this read after the write.
                unsafe { *p }
            });
            assert_eq!(v, 42);
        }
        t.join().unwrap();
    });
}

/// Lock-order inversion must be reported as a deadlock (some schedule
/// acquires a→b while the other thread holds b and wants a).
#[test]
#[should_panic(expected = "deadlock")]
fn detects_lock_order_inversion_deadlock() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            // lock-order: deliberately a then b — half of the seeded inversion.
            let _gb = b2.lock();
        });
        {
            let _gb = b.lock();
            // lock-order: deliberately b then a — the other half; the checker
            // must find the schedule where the two halves deadlock.
            let _ga = a.lock();
        }
        t.join().unwrap();
    });
}

/// DPOR pruning: threads touching disjoint objects commute, so exactly one
/// schedule is explored; threads conflicting on one object need more.
#[test]
fn dpor_prunes_commuting_schedules() {
    let builder = Builder::new();
    let disjoint = builder.explored(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let x2 = x.clone();
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
        });
        y.store(1, Ordering::SeqCst);
        t.join().unwrap();
    });
    assert_eq!(disjoint, 1, "commuting stores must not branch");

    let conflicting = builder.explored(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = x.clone();
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
        });
        x.store(2, Ordering::SeqCst);
        t.join().unwrap();
    });
    assert!(
        conflicting > 1,
        "conflicting stores must explore both orders (got {conflicting})"
    );
}

/// Flake guard: blowing the schedule budget fails loudly instead of passing
/// on a partial search.
#[test]
#[should_panic(expected = "exploration truncated")]
fn truncated_exploration_is_loud() {
    let builder = Builder {
        max_branches: 1,
        ..Builder::new()
    };
    builder.check(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = x.clone();
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
        });
        x.store(2, Ordering::SeqCst);
        t.join().unwrap();
    });
}

/// A preemption bound of 0 (no involuntary switches) explores no more
/// schedules than the unbounded search.
#[test]
fn preemption_bound_shrinks_search() {
    let run = |bound: Option<usize>| {
        let builder = Builder {
            preemption_bound: bound,
            ..Builder::new()
        };
        builder.explored(|| {
            let x = Arc::new(AtomicUsize::new(0));
            let x2 = x.clone();
            let t = thread::spawn(move || {
                x2.fetch_add(1, Ordering::SeqCst);
                x2.fetch_add(1, Ordering::SeqCst);
            });
            x.fetch_add(1, Ordering::SeqCst);
            x.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
        })
    };
    let bounded = run(Some(0));
    let unbounded = run(None);
    assert!(bounded >= 1);
    assert!(
        bounded <= unbounded,
        "bounded search ({bounded}) larger than exhaustive ({unbounded})"
    );
}

/// RwLock: readers share, writers exclude; the write is visible afterwards.
#[test]
fn rwlock_readers_share_writer_excludes() {
    loom::model(|| {
        let lock = Arc::new(RwLock::new(0usize));
        let l2 = lock.clone();
        let writer = thread::spawn(move || {
            *l2.write() += 1;
        });
        let before = *lock.read();
        assert!(before <= 1);
        writer.join().unwrap();
        assert_eq!(*lock.read(), 1);
    });
}

/// Bounded spin loops with `yield_now` converge: the scheduler deprioritizes
/// a yielding thread so the producer makes progress, and the retry bound
/// keeps the schedule space finite (unbounded spins diverge the search and
/// trip the `max_branches` flake guard instead of hanging).
#[test]
fn bounded_spin_with_yield_terminates() {
    let builder = Builder {
        max_branches: 2_000,
        ..Builder::new()
    };
    builder.check(|| {
        let ready = Arc::new(AtomicBool::new(false));
        let r2 = ready.clone();
        let t = thread::spawn(move || {
            // ordering: Release half of the Release/Acquire publication pair
            // this test asserts passes cleanly.
            r2.store(true, Ordering::Release);
        });
        let mut seen = false;
        for _ in 0..3 {
            // ordering: Acquire pairs with the producer's Release store.
            if ready.load(Ordering::Acquire) {
                seen = true;
                break;
            }
            thread::yield_now();
        }
        t.join().unwrap();
        // ordering: join establishes happens-before with the producer.
        assert!(seen || ready.load(Ordering::Acquire));
    });
}

/// Thread results flow through join, and concurrent cell reads don't race.
#[test]
fn join_results_and_shared_reads() {
    loom::model(|| {
        let cell = Arc::new(UnsafeCell::new(7usize));
        let c2 = cell.clone();
        let t = thread::spawn(move || {
            c2.with(|p| {
                // SAFETY: concurrent shared reads are race-free.
                unsafe { *p }
            })
        });
        let mine = cell.with(|p| {
            // SAFETY: concurrent shared reads are race-free.
            unsafe { *p }
        });
        let theirs = t.join().unwrap();
        assert_eq!((mine, theirs), (7, 7));
    });
}

/// compare_exchange: exactly one of two racing CAS attempts wins.
#[test]
fn compare_exchange_single_winner() {
    loom::model(|| {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = x.clone();
        let t = thread::spawn(move || {
            x2.compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        });
        let mine = x
            .compare_exchange(0, 2, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok();
        let theirs = t.join().unwrap();
        assert!(mine ^ theirs, "exactly one CAS must win");
        let v = x.load(Ordering::SeqCst);
        assert!(v == 1 || v == 2);
    });
}
