//! Offline shim of the `bytes` crate (see `shims/README.md`).
//!
//! Provides [`Bytes`] (cheaply cloneable, sliceable, immutable byte buffer),
//! [`BytesMut`] (growable builder), and the [`Buf`] / [`BufMut`] trait subset
//! the prototype's wire format uses.  `Bytes` is an `Arc<[u8]>` plus a range,
//! so `clone` and `advance` are O(1) and datagram payload views never copy —
//! the same properties the real crate guarantees.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// Read-side cursor operations.
pub trait Buf {
    /// Number of bytes remaining.
    fn remaining(&self) -> usize;
    /// Advance the read cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt` exceeds [`Buf::remaining`].
    fn advance(&mut self, cnt: usize);
}

/// Write-side append operations.
pub trait BufMut {
    /// Append `src`.
    fn put_slice(&mut self, src: &[u8]);
    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

enum Inner {
    Shared(Arc<[u8]>),
    Static(&'static [u8]),
}

impl Clone for Inner {
    fn clone(&self) -> Self {
        match self {
            Inner::Shared(a) => Inner::Shared(a.clone()),
            Inner::Static(s) => Inner::Static(s),
        }
    }
}

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone)]
pub struct Bytes {
    inner: Inner,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from_static(&[])
    }

    /// Wrap a static slice without allocating.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            start: 0,
            end: bytes.len(),
            inner: Inner::Static(bytes),
        }
    }

    /// Number of visible bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if no bytes are visible.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copy the visible bytes into a fresh vector.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        match &self.inner {
            Inner::Shared(a) => &a[self.start..self.end],
            Inner::Static(s) => &s[self.start..self.end],
        }
    }

    /// O(1) sub-view covering `range` of the visible bytes.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end && range.end <= self.len());
        Bytes {
            inner: self.inner.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            start: 0,
            end: v.len(),
            inner: Inner::Shared(v.into()),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::from_static(s)
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end of Bytes");
        self.start += cnt;
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_advance_roundtrip() {
        let mut b = BytesMut::with_capacity(8);
        b.put_slice(b"head");
        b.put_slice(b"tail");
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 8);
        frozen.advance(4);
        assert_eq!(&frozen[..], b"tail");
        assert_eq!(frozen.remaining(), 4);
    }

    #[test]
    fn clone_is_view_not_copy() {
        let a = Bytes::from(vec![1u8, 2, 3, 4]);
        let mut b = a.clone();
        b.advance(2);
        assert_eq!(&a[..], &[1, 2, 3, 4]);
        assert_eq!(&b[..], &[3, 4]);
        assert_eq!(a.slice(1..3), Bytes::from(vec![2u8, 3]));
    }

    #[test]
    #[should_panic(expected = "advance past end")]
    fn advance_past_end_panics() {
        let mut b = Bytes::from_static(b"xy");
        b.advance(3);
    }

    #[test]
    fn equality_across_sources() {
        assert_eq!(Bytes::from_static(b"abc"), Bytes::from(b"abc".to_vec()));
        assert!(Bytes::from_static(b"abc") == *b"abc".to_vec().as_slice());
    }
}
