//! Offline, API-compatible subset of the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external dependencies the code uses are provided as small in-tree shims
//! (see `shims/README.md`).  This crate mirrors the parts of `rand` 0.8 the
//! workspace actually exercises:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::StdRng`] (a xoshiro256++ generator — deterministic, fast, and
//!   statistically strong; it does not reproduce upstream `StdRng` streams,
//!   which nothing in the workspace relies on),
//! * uniform range sampling via [`Rng::gen_range`],
//! * [`seq::SliceRandom::shuffle`] and [`seq::index::sample`].
//!
//! Distribution quality matters here — the simulations and overhead
//! experiments are statistical — so the generators are real PRNGs, not
//! counters.  Stream *compatibility* with upstream `rand` is explicitly a
//! non-goal; all workspace results are calibrated against these shims.

#![forbid(unsafe_code)]

/// The core of a random number generator: a source of uniformly distributed
/// raw bits.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded internally via
    /// SplitMix64, as upstream `rand` does).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits (the shim's
/// stand-in for `rand`'s `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` without modulo bias (Lemire's method on a
/// 128-bit widening multiply).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let mut m = rng.next_u64() as u128 * bound as u128;
    let mut lo = m as u64;
    if lo < bound {
        let threshold = bound.wrapping_neg() % bound;
        while lo < threshold {
            m = rng.next_u64() as u128 * bound as u128;
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return <$t as Standard>::sample(rng);
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods layered over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Sample a value of any [`Standard`]-samplable type.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64 — used to expand 64-bit seeds into full generator states.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    ///
    /// Deterministic in its seed, passes BigCrush, and fast.  Does **not**
    /// reproduce upstream `StdRng` (ChaCha12) streams.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the one degenerate case; splitmix64 of any
            // seed cannot produce it across four outputs, but guard anyway.
            if s == [0; 4] {
                s[0] = 1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }
}

/// Sequence-related helpers (`shuffle`, index sampling).
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Distinct-index sampling.
    pub mod index {
        use super::super::{Rng, RngCore};
        use super::SliceRandom;

        /// A set of sampled indices.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The indices as a plain vector.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// True if no indices were sampled.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length`, uniformly at
        /// random, in random order.
        ///
        /// Uses Floyd's combination algorithm: `O(amount)` time and memory
        /// regardless of `length`, which matters because graph construction
        /// calls this once per message node.
        ///
        /// # Panics
        ///
        /// Panics if `amount > length`.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            let mut selected: Vec<usize> = Vec::with_capacity(amount);
            if amount > 64 {
                // Large samples: constant-time membership via a hash set.
                let mut seen = std::collections::HashSet::with_capacity(amount);
                for j in (length - amount)..length {
                    let t = rng.gen_range(0..=j);
                    if seen.insert(t) {
                        selected.push(t);
                    } else {
                        seen.insert(j);
                        selected.push(j);
                    }
                }
            } else {
                // Small samples: a linear scan beats hashing.
                for j in (length - amount)..length {
                    let t = rng.gen_range(0..=j);
                    if selected.contains(&t) {
                        selected.push(j);
                    } else {
                        selected.push(t);
                    }
                }
            }
            // Floyd's algorithm biases the *order* of the result; callers that
            // care about order (socket matching in graph construction) need it
            // uniform, so shuffle the (small) result.
            selected.shuffle(rng);
            IndexVec(selected)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{index, SliceRandom};
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.gen_range(250..=255);
            assert!(w >= 250);
        }
    }

    #[test]
    fn f64_samples_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the identity order (astronomically unlikely)"
        );
    }

    #[test]
    fn index_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(4);
        for &(len, amt) in &[(10usize, 3usize), (1000, 200), (5, 5), (7, 0)] {
            let idx = index::sample(&mut rng, len, amt).into_vec();
            assert_eq!(idx.len(), amt);
            let set: std::collections::HashSet<_> = idx.iter().copied().collect();
            assert_eq!(set.len(), amt, "duplicates in {idx:?}");
            assert!(idx.iter().all(|&i| i < len));
        }
    }

    #[test]
    fn index_sample_covers_uniformly() {
        // Each index of 0..20 should appear in roughly amount/length of draws.
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 20];
        let trials = 20_000;
        for _ in 0..trials {
            for i in index::sample(&mut rng, 20, 5) {
                counts[i] += 1;
            }
        }
        let expected = trials / 4; // 5/20 of trials
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected as f64).abs() < expected as f64 * 0.1,
                "index {i} drawn {c} times, expected ≈{expected}"
            );
        }
    }
}
