//! Offline shim of `serde_json` (see `shims/README.md`): renders and parses
//! JSON against the serde shim's [`serde::Value`] tree.
//!
//! Supports the full JSON grammar the workspace produces: objects, arrays,
//! strings with escapes (including `\uXXXX` and surrogate pairs), integers up
//! to the `u64`/`i64` ranges (kept exact — never routed through `f64`),
//! floats, booleans and null.  Non-finite floats are a serialization error,
//! as in real serde_json.

#![forbid(unsafe_code)]

use serde::{Deserialize, Error, Serialize, Value};

/// Serialize a value to a compact JSON string.
///
/// # Errors
///
/// Returns an error if the value contains a non-finite float.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Deserialize a value from a JSON string.
///
/// # Errors
///
/// Returns an error on malformed JSON, trailing input, or shape mismatches.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let value = parse_value_str(input)?;
    T::from_value(&value)
}

/// Parse a JSON string into the raw [`Value`] tree.
///
/// # Errors
///
/// Returns an error on malformed JSON or trailing input.
pub fn parse_value_str(input: &str) -> Result<Value, Error> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom(format!("trailing input at byte {pos}")));
    }
    Ok(value)
}

fn write_value(value: &Value, out: &mut String) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::custom("cannot serialize non-finite float"));
            }
            // Rust's Display prints the shortest round-trippable form, but an
            // integral float like 2.0 prints as "2"; keep it a float token.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, token: &str) -> Result<(), Error> {
    if bytes[*pos..].starts_with(token.as_bytes()) {
        *pos += token.len();
        Ok(())
    } else {
        Err(Error::custom(format!("expected `{token}` at byte {pos}")))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of input")),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::custom(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::custom(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = parse_hex4(bytes, *pos + 1)?;
                        *pos += 4;
                        let code = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: require \uXXXX low surrogate.
                            if bytes.get(*pos + 1) == Some(&b'\\')
                                && bytes.get(*pos + 2) == Some(&b'u')
                            {
                                let lo = parse_hex4(bytes, *pos + 3)?;
                                *pos += 6;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                            } else {
                                return Err(Error::custom("unpaired surrogate"));
                            }
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("invalid unicode escape"))?,
                        );
                    }
                    _ => return Err(Error::custom(format!("invalid escape at byte {pos}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so this is
                // always valid).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::custom("invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty by match");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], at: usize) -> Result<u32, Error> {
    let slice = bytes
        .get(at..at + 4)
        .ok_or_else(|| Error::custom("truncated \\u escape"))?;
    let s = std::str::from_utf8(slice).map_err(|_| Error::custom("invalid \\u escape"))?;
    u32::from_str_radix(s, 16).map_err(|_| Error::custom("invalid \\u escape"))
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::custom("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("expected number at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid float `{text}`")))
    } else {
        text.parse::<i128>()
            .map(Value::Int)
            .map_err(|_| Error::custom(format!("invalid integer `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(
            from_str::<u64>(&to_string(&u64::MAX).unwrap()).unwrap(),
            u64::MAX
        );
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\nwith \"quotes\" and \\ and unicode: é 🚀".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(from_str::<String>(r#""é 🚀""#).unwrap(), "é 🚀");
    }

    #[test]
    fn nested_value_roundtrip() {
        let v = Value::Object(vec![
            (
                "xs".into(),
                Value::Array(vec![Value::Int(1), Value::Int(2)]),
            ),
            (
                "nested".into(),
                Value::Object(vec![("f".into(), Value::Float(0.25))]),
            ),
            ("none".into(), Value::Null),
        ]);
        let mut out = String::new();
        super::write_value(&v, &mut out).unwrap();
        assert_eq!(parse_value_str(&out).unwrap(), v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("4 2").is_err());
        assert!(from_str::<u64>("[").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
