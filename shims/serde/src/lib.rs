//! Offline shim of `serde` (see `shims/README.md`).
//!
//! Real serde abstracts over serializers; this workspace only ever
//! round-trips values through JSON (session control info, experiment
//! records), so the shim uses a concrete in-memory [`Value`] tree instead of
//! the visitor machinery:
//!
//! * [`Serialize`] converts a value **to** a [`Value`],
//! * [`Deserialize`] reconstructs a value **from** a [`Value`],
//! * `#[derive(Serialize, Deserialize)]` (re-exported from the in-tree
//!   `serde_derive` proc macro) supports structs with named fields and enums
//!   with unit or struct variants — the shapes the workspace defines,
//! * `serde_json` (its own shim crate) renders and parses the tree.
//!
//! Enum representation matches serde's default ("externally tagged"):
//! unit variants serialize as `"VariantName"`, struct variants as
//! `{"VariantName": {fields...}}`.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON-like value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integral JSON number (covers the full `u64`/`i64` ranges losslessly).
    Int(i128),
    /// Non-integral JSON number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or `None` for other variants.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The elements of an array, or `None`.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String contents, or `None`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Error produced by [`Deserialize`] (and by `serde_json` parsing).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Construct an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde: {}", self.message)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the [`Value`] tree.
pub trait Serialize {
    /// Build the value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruct a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Parse from the value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Look up a field of an object by name (used by derived impls).
pub fn get_field<'v>(fields: &'v [(String, Value)], name: &str) -> Result<&'v Value, Error> {
    fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i128)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i).map_err(|_| {
                        Error::custom(format!(
                            "number {i} out of range for {}", stringify!($t)
                        ))
                    }),
                    _ => Err(Error::custom(format!(
                        "expected integer for {}", stringify!($t)
                    ))),
                }
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            _ => Err(Error::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        for v in [0u64, 1, u64::MAX] {
            assert_eq!(u64::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Vec::<u16>::from_value(&vec![1u16, 2].to_value()).unwrap(),
            vec![1, 2]
        );
    }
}
