//! Offline property-testing shim mirroring the subset of `proptest` this
//! workspace uses (see `shims/README.md` for why external crates are shimmed).
//!
//! Supported surface:
//!
//! * the [`proptest!`] macro with `ident: Type` and `ident in strategy`
//!   parameters (mixed freely) and an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header,
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`],
//! * `any::<T>()` for the integer primitives, `bool` and `f64`,
//! * integer range strategies (`lo..hi`, `lo..=hi`),
//! * [`collection::vec`].
//!
//! Differences from real proptest, deliberately accepted for an offline test
//! dependency: failing inputs are **not shrunk** (the failing case is printed
//! verbatim instead), and case generation is seeded deterministically from the
//! test name so CI runs are reproducible.  Integer strategies oversample edge
//! values (min/0/1/max) the way proptest's binary search tends to surface
//! them.

#![forbid(unsafe_code)]

use rand::{Rng as _, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream proptest's default.
        ProptestConfig { cases: 256 }
    }
}

/// The RNG driving case generation.
pub type TestRng = ChaCha8Rng;

/// Deterministic per-test RNG: seeded from the test's name, overridable with
/// the `PROPTEST_SEED` environment variable for exploratory runs.
pub fn test_rng(test_name: &str) -> TestRng {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        if let Ok(seed) = seed.parse::<u64>() {
            return TestRng::seed_from_u64(seed);
        }
    }
    // FNV-1a over the test name.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h)
}

/// A failed property-test assertion (returned, not panicked, so the harness
/// can attach the generated inputs before panicking).
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Record a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type of value produced.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy producing any value of `T` (the shim's `any`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Oversample edges: real proptest's shrinking surfaces these;
                // without shrinking we have to draw them often enough to hit
                // boundary bugs directly.
                match rng.gen_range(0u32..8) {
                    0 => match rng.gen_range(0u32..4) {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        _ => 1 as $t,
                    },
                    _ => rng.gen::<$t>(),
                }
            }
        }
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                // Bias towards the endpoints for the same reason.
                if rng.gen_range(0u32..8) == 0 {
                    if rng.gen::<bool>() { self.start } else { self.end - 1 }
                } else {
                    rng.gen_range(self.clone())
                }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                if rng.gen_range(0u32..8) == 0 {
                    if rng.gen::<bool>() { *self.start() } else { *self.end() }
                } else {
                    rng.gen_range(self.clone())
                }
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        match rng.gen_range(0u32..8) {
            0 => *[0.0, 1.0, -1.0, f64::MIN_POSITIVE, f64::MAX]
                .get(rng.gen_range(0usize..5))
                .unwrap(),
            _ => {
                // Scale a unit sample across a wide dynamic range.
                let mag = rng.gen::<f64>() * 2.0 - 1.0;
                let exp = rng.gen_range(-64i32..64) as f64;
                mag * exp.exp2()
            }
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Strategy yielding both booleans uniformly.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = core::primitive::bool;
        fn sample(&self, rng: &mut TestRng) -> core::primitive::bool {
            rng.gen()
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Strategy for `Vec<T>` with sizes drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `Vec` strategy: each case draws a length from `size` and fills it with
    /// samples from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a test module needs: `use proptest::prelude::*;`.
pub mod prelude {
    /// Re-export so `proptest::collection::vec` paths resolve through the
    /// prelude glob as well.
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Assert a condition inside a [`proptest!`] body, reporting the generated
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Define property tests.
///
/// Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop_name(a: u8, len in 1usize..40) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

/// Internal: expand each `fn` item of a [`proptest!`] block.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr) $(#[$attr:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        // Property tests run hundreds of cases; under the Miri interpreter
        // that is intractable, and the deterministic unit suites already
        // cover the same code.  Ignore them wholesale under Miri (the CI
        // `miri` job runs the plain #[test] suites instead).
        #[cfg_attr(miri, ignore = "property-based sweep; intractable under the Miri interpreter")]
        $(#[$attr])*
        fn $name() {
            $crate::__proptest_case!{ ($cfg, stringify!($name), $body) () $($params)* }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Internal: munch the parameter list into `(ident, strategy)` pairs, then
/// emit the case loop.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Done munching: run the cases.
    (($cfg:expr, $name:expr, $body:block) ($(($id:ident, $strat:expr))*)) => {{
        let config: $crate::ProptestConfig = $cfg;
        let mut rng = $crate::test_rng($name);
        for case in 0..config.cases {
            $(let $id = $crate::Strategy::sample(&($strat), &mut rng);)*
            let inputs = {
                let mut s = ::std::string::String::new();
                $(
                    s.push_str(concat!(stringify!($id), " = "));
                    s.push_str(&format!("{:?}, ", $id));
                )*
                s
            };
            let result: ::core::result::Result<(), $crate::TestCaseError> =
                (move || { $body ::core::result::Result::Ok(()) })();
            if let ::core::result::Result::Err(e) = result {
                panic!(
                    "proptest {} failed at case {}/{}:\n{}\ninputs: {}",
                    $name, case + 1, config.cases, e, inputs
                );
            }
        }
    }};
    // `ident in strategy`
    (($($ctx:tt)*) ($($acc:tt)*) $id:ident in $strat:expr, $($rest:tt)*) => {
        $crate::__proptest_case!{ ($($ctx)*) ($($acc)* ($id, $strat)) $($rest)* }
    };
    (($($ctx:tt)*) ($($acc:tt)*) $id:ident in $strat:expr) => {
        $crate::__proptest_case!{ ($($ctx)*) ($($acc)* ($id, $strat)) }
    };
    // `ident: Type`
    (($($ctx:tt)*) ($($acc:tt)*) $id:ident : $t:ty, $($rest:tt)*) => {
        $crate::__proptest_case!{ ($($ctx)*) ($($acc)* ($id, $crate::any::<$t>())) $($rest)* }
    };
    (($($ctx:tt)*) ($($acc:tt)*) $id:ident : $t:ty) => {
        $crate::__proptest_case!{ ($($ctx)*) ($($acc)* ($id, $crate::any::<$t>())) }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn typed_params_work(a: u8, b: u16) {
            prop_assert!(u32::from(a) <= 255 && u32::from(b) <= 65_535);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn strategy_params_work(x in 3usize..10, y in 1u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn mixed_params_and_vec(seed: u64, data in collection::vec(any::<u8>(), 0..50)) {
            prop_assert!(data.len() < 50);
            let _ = seed;
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            // No #[test] attribute here: the fn is invoked directly below.
            proptest! {
                fn always_fails(v in 0u32..10) {
                    prop_assert!(v > 100, "v was {}", v);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic payload");
        assert!(msg.contains("always_fails"), "message: {msg}");
        assert!(msg.contains("inputs"), "message: {msg}");
    }

    #[test]
    fn edge_values_are_oversampled() {
        let mut rng = crate::test_rng("edges");
        let mut saw_max = false;
        for _ in 0..500 {
            if u64::arbitrary(&mut rng) == u64::MAX {
                saw_max = true;
            }
        }
        assert!(saw_max, "500 draws should hit u64::MAX via edge bias");
    }
}
