//! Offline shim of `parking_lot` (see `shims/README.md`): the non-poisoning
//! [`Mutex`] API implemented over `std::sync::Mutex`.  A poisoned std lock
//! (panic while held) is recovered transparently, matching parking_lot's
//! semantics of not propagating poison.

#![forbid(unsafe_code)]

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; unlocks on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_locking() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_survives_poisoning_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
