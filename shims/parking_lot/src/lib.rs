//! Offline shim of `parking_lot` (see `shims/README.md`): the non-poisoning
//! [`Mutex`] and [`RwLock`] APIs implemented over their `std::sync`
//! counterparts.  A poisoned std lock (panic while held) is recovered
//! transparently, matching parking_lot's semantics of not propagating poison.

#![forbid(unsafe_code)]

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; unlocks on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire the lock if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` never return a poison error.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`]; unlocks on drop.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Exclusive guard returned by [`RwLock::write`]; unlocks on drop.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire the exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Acquire the exclusive write lock if it is free right now.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn basic_locking() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn lock_survives_poisoning_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn try_lock_reports_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(7);
        {
            let a = l.read();
            // lock-order: two shared guards on the same RwLock — readers
            // never exclude each other, so no ordering is needed.
            let b = l.read();
            assert_eq!((*a, *b), (7, 7));
            assert!(l.try_write().is_none());
        }
        *l.write() += 1;
        assert_eq!(*l.read(), 8);
        assert_eq!(l.into_inner(), 8);
    }

    #[test]
    fn rwlock_survives_poisoning_panic() {
        let l = Arc::new(RwLock::new(0));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("poison the std rwlock");
        })
        .join();
        *l.write() += 1;
        assert_eq!(*l.read(), 1);
    }
}
